package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestSummarizeBlackboxTriage: dumps group by trigger with counts and
// first/last times; malformed lines are counted, not fatal; rows order by
// first occurrence.
func TestSummarizeBlackboxTriage(t *testing.T) {
	archive := `{"seq":1,"trigger":"reactive-engagement","t_ms":2500,"cycles_recorded":50,"records":[{"cycle":1,"t_ms":2480},{"cycle":2,"t_ms":2490}]}
{"seq":2,"trigger":"collision","t_ms":3000,"cycles_recorded":60,"records":[{"cycle":3,"t_ms":2990}]}
this line is not json
{"seq":3,"trigger":"reactive-engagement","t_ms":9000,"cycles_recorded":180,"records":[]}
{"bad":"no trigger field"}

`
	sum, err := SummarizeBlackbox(strings.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Dumps != 3 || sum.MalformedLines != 2 {
		t.Fatalf("dumps=%d malformed=%d, want 3/2", sum.Dumps, sum.MalformedLines)
	}
	if len(sum.ByTrigger) != 2 {
		t.Fatalf("rows = %d, want 2", len(sum.ByTrigger))
	}
	re := sum.ByTrigger[0]
	if re.Trigger != "reactive-engagement" || re.Dumps != 2 || re.FirstTMs != 2500 || re.LastTMs != 9000 || re.CyclesCaught != 2 {
		t.Fatalf("reactive row: %+v", re)
	}
	col := sum.ByTrigger[1]
	if col.Trigger != "collision" || col.Dumps != 1 || col.FirstTMs != 3000 || col.CyclesCaught != 1 {
		t.Fatalf("collision row: %+v", col)
	}
	out := sum.Render()
	for _, want := range []string{"flight-recorder dumps: 3", "malformed lines skipped: 2", "reactive-engagement", "collision"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSummarizeBlackboxRoundTrip: a real recorder's archive summarizes to
// its own stats.
func TestSummarizeBlackboxRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fr := NewFlightRecorder(&buf, 4, 2)
	for i := 0; i < 6; i++ {
		fr.Record(CycleRecord{Cycle: i, TMs: float64(i * 100)})
	}
	fr.Trigger(TriggerCollision, 450)
	fr.Record(CycleRecord{Cycle: 6, TMs: 600})
	fr.Record(CycleRecord{Cycle: 7, TMs: 700, Blocked: true})
	fr.Record(CycleRecord{Cycle: 8, TMs: 800, Blocked: true})
	dumps, err := fr.Close()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := SummarizeBlackbox(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Dumps != dumps || sum.MalformedLines != 0 {
		t.Fatalf("summary dumps=%d malformed=%d, recorder dumps=%d", sum.Dumps, sum.MalformedLines, dumps)
	}
}

// TestSummarizeBlackboxEmpty: an empty archive is fine.
func TestSummarizeBlackboxEmpty(t *testing.T) {
	sum, err := SummarizeBlackbox(strings.NewReader(""))
	if err != nil || sum.Dumps != 0 {
		t.Fatalf("sum=%+v err=%v", sum, err)
	}
	if !strings.Contains(sum.Render(), "no flight-recorder dumps") {
		t.Fatal("empty render")
	}
}
