package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"sov/internal/stats"
)

// traceEvent is the subset of the Chrome trace_event schema the analyzer
// reads back.
type traceEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Name string  `json:"name"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Args struct {
		Cycle  int    `json:"cycle"`
		Parent string `json:"parent"`
		Name   string `json:"name"`
	} `json:"args"`
}

// StageSummary is one span name's duration distribution in milliseconds.
type StageSummary struct {
	Name  string
	DurMs stats.Summary
}

// PathShare attributes perception's critical path: how many cycles each
// leaf chain (depth, detect+track, vio) set the perception span's length,
// and the mean length of the chain when it dominated.
type PathShare struct {
	Chain  string
	Cycles int
	MeanMs float64
}

// SpanSummary is the offline analysis of a span file: the per-stage
// latency breakdown and the per-cycle critical-path attribution.
type SpanSummary struct {
	Events     int
	HostEvents int
	Cycles     int
	Stages     []StageSummary
	Critical   []PathShare
}

// perception's leaf chains: the scene-understanding group runs detect then
// track serially, racing depth, and the whole group races localization
// (vio); the longest chain is the stage's critical path (latencyModel.draw).
var perceptionChains = []struct {
	name   string
	leaves []string
}{
	{"detect+track", []string{"detect", "track"}},
	{"depth", []string{"depth"}},
	{"vio", []string{"vio"}},
}

// SummarizeSpans parses a Chrome trace_event JSON span file (written by
// SpanWriter) and computes the per-stage duration distributions plus the
// perception critical-path attribution per cycle. Host-track events are
// counted but excluded from the statistics.
func SummarizeSpans(r io.Reader) (SpanSummary, error) {
	var events []traceEvent
	dec := json.NewDecoder(r)
	if err := dec.Decode(&events); err != nil {
		return SpanSummary{}, fmt.Errorf("obs: parsing span file: %w", err)
	}
	var out SpanSummary
	byName := make(map[string]*stats.Sample)
	// leafByCycle[cycle][leaf] = duration ms for the perception leaves.
	leafByCycle := make(map[int]map[string]float64)
	cycles := make(map[int]bool)
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		if ev.Pid != PIDVirtual {
			out.HostEvents++
			continue
		}
		out.Events++
		durMs := ev.Dur / 1e3
		s := byName[ev.Name]
		if s == nil {
			s = stats.NewSample()
			byName[ev.Name] = s
		}
		s.Observe(durMs)
		cycles[ev.Args.Cycle] = true
		if ev.Args.Parent == "perception" {
			m := leafByCycle[ev.Args.Cycle]
			if m == nil {
				m = make(map[string]float64)
				leafByCycle[ev.Args.Cycle] = m
			}
			m[ev.Name] = durMs
		}
	}
	out.Cycles = len(cycles)

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Stages = append(out.Stages, StageSummary{Name: name, DurMs: byName[name].Summarize()})
	}

	wins := make([]int, len(perceptionChains))
	sums := make([]float64, len(perceptionChains))
	cycleIDs := make([]int, 0, len(leafByCycle))
	for c := range leafByCycle {
		cycleIDs = append(cycleIDs, c)
	}
	sort.Ints(cycleIDs)
	for _, c := range cycleIDs {
		leaves := leafByCycle[c]
		best, bestLen := -1, -1.0
		for i, ch := range perceptionChains {
			total := 0.0
			for _, leaf := range ch.leaves {
				total += leaves[leaf]
			}
			if total > bestLen {
				best, bestLen = i, total
			}
		}
		if best >= 0 {
			wins[best]++
			sums[best] += bestLen
		}
	}
	for i, ch := range perceptionChains {
		share := PathShare{Chain: ch.name, Cycles: wins[i]}
		if wins[i] > 0 {
			share.MeanMs = sums[i] / float64(wins[i])
		}
		out.Critical = append(out.Critical, share)
	}
	sort.SliceStable(out.Critical, func(i, j int) bool { return out.Critical[i].Cycles > out.Critical[j].Cycles })
	return out, nil
}

// Render formats the summary for the terminal.
func (s SpanSummary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spans: %d virtual-time events over %d cycles", s.Events, s.Cycles)
	if s.HostEvents > 0 {
		fmt.Fprintf(&b, " (+%d host wall-clock events)", s.HostEvents)
	}
	b.WriteString("\nper-stage latency (virtual time, ms):\n")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "  %-12s %s\n", st.Name, st.DurMs)
	}
	total := 0
	for _, c := range s.Critical {
		total += c.Cycles
	}
	if total > 0 {
		b.WriteString("perception critical path (which chain set the stage's length):\n")
		for _, c := range s.Critical {
			fmt.Fprintf(&b, "  %-12s %5.1f%% of cycles (mean %.1f ms when dominant)\n",
				c.Chain, 100*float64(c.Cycles)/float64(total), c.MeanMs)
		}
	}
	return b.String()
}
