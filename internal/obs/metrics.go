// Package obs is the unified telemetry layer: a deterministic metrics
// registry, per-cycle span tracing in virtual time, and a flight recorder
// for anomaly forensics. It is the software counterpart of the paper's
// Fig. 1 fleet loop — condensed vehicle statistics uploaded and re-analyzed
// offline — generalized into three instruments:
//
//   - Registry: named counters, gauges, and fixed-bin histograms with a
//     stable, sorted Prometheus-style text exposition and a JSON snapshot.
//     Every metric carries a determinism class: ClassVirtual values derive
//     only from the virtual clock and the seeded RNG streams, so their
//     exposition is byte-identical across worker counts and control-loop
//     modes; ClassHost values are wall-clock diagnostics excluded from that
//     contract and emitted in a clearly separated section.
//   - SpanWriter: per-cycle spans (capture → sensing → perception{depth,
//     detect, track, vio} → planning → deliver → actuate) recorded in
//     virtual time with causal parent links, exported as Chrome
//     trace_event JSON loadable in Perfetto. Host wall-clock spans live on
//     a separate, labeled process track.
//   - FlightRecorder: a fixed ring of the last N cycle records, dumped on
//     collision, reactive engagement, or blocked-cycle streaks — crash
//     forensics without full-trace overhead.
//
// The steady-state record paths (Counter.Inc/Add, Gauge.Set,
// Histogram.Observe, SpanWriter.Span, FlightRecorder.Record) are
// allocation-free once warm and registered in sovlint's hotalloc table.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Class is a metric's determinism class.
type Class uint8

const (
	// ClassVirtual marks values derived only from virtual time and seeded
	// RNG streams: byte-identical across worker counts and control-loop
	// modes for a fixed configuration.
	ClassVirtual Class = iota
	// ClassHost marks wall-clock / host-scheduling diagnostics, excluded
	// from the determinism contract.
	ClassHost
)

func (c Class) String() string {
	if c == ClassHost {
		return "host"
	}
	return "virtual"
}

// Counter is a monotonically increasing integer metric. Safe for concurrent
// use; Inc and Add never allocate.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//sov:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
//
//sov:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric. Safe for concurrent use; Set
// never allocates.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//sov:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bin histogram over [lo, hi); observations outside
// the range are clamped into the first/last bin so nothing is lost. The
// bin layout is fixed at registration, so the exposition is byte-stable
// and Observe never allocates.
type Histogram struct {
	mu     sync.Mutex
	lo     float64
	width  float64
	counts []int64
	count  int64
	sum    float64
}

// Observe records one value.
//
//sov:hotpath
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	idx := int((v - h.lo) / h.width)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot copies the histogram state under the lock.
func (h *Histogram) snapshot() (counts []int64, count int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]int64, len(h.counts))
	copy(counts, h.counts)
	return counts, h.count, h.sum
}

// quantiles is the fixed set every histogram exposes.
var quantiles = [...]float64{0.50, 0.95, 0.99}

// quantileLabels renders without a float formatter so the exposition
// bytes never depend on formatting defaults.
var quantileLabels = [...]string{"0.5", "0.95", "0.99"}

// binQuantile estimates the q-quantile from fixed bins by linear
// interpolation inside the covering bin: find the first bin whose
// cumulative count reaches rank q·count, then place the value
// proportionally between the bin's edges. Pure integer walk plus one
// fixed-order float expression, so equal snapshots render equal bytes.
// Returns NaN when the histogram is empty.
func binQuantile(counts []int64, count int64, lo, width float64, q float64) float64 {
	if count == 0 {
		return math.NaN()
	}
	rank := q * float64(count)
	cum := int64(0)
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) >= rank && c > 0 {
			frac := (rank - float64(prev)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + width*(float64(i)+frac)
		}
	}
	return lo + width*float64(len(counts))
}

// Quantile estimates the q-quantile of the observed distribution from the
// fixed bins (see binQuantile). NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts, count, _ := h.snapshot()
	return binQuantile(counts, count, h.lo, h.width, q)
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered entry.
type metric struct {
	name  string
	help  string
	class Class
	kind  kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics and renders them deterministically: the
// exposition sorts by (class, name), so two registries holding the same
// values produce the same bytes regardless of registration order.
// Registration allocates and is meant for setup time; the returned handles
// are what hot paths touch.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(m *metric) {
	if !validName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want [a-z0-9_]+)", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", m.name))
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, class Class) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, class: class, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, class Class) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, class: class, kind: kindGauge, gauge: g})
	return g
}

// Histogram registers and returns a fixed-bin histogram over [lo, hi).
func (r *Registry) Histogram(name, help string, class Class, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("obs: invalid histogram %q [%v,%v) bins=%d", name, lo, hi, bins))
	}
	h := &Histogram{lo: lo, width: (hi - lo) / float64(bins), counts: make([]int64, bins)}
	r.register(&metric{name: name, help: help, class: class, kind: kindHistogram, hist: h})
	return h
}

// sortedMetrics returns the registered metrics ordered by (class, name):
// the virtual section first, each section alphabetical.
func (r *Registry) sortedMetrics() []*metric {
	r.mu.Lock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].class != out[j].class {
			return out[i].class < out[j].class
		}
		return out[i].name < out[j].name
	})
	return out
}

// appendFloat renders a float the way the exposition does everywhere:
// shortest round-trip representation, deterministic for a given value.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

const (
	headerVirtual = "# determinism: virtual-time (byte-identical across workers and control-loop modes)\n"
	headerHost    = "# determinism: host wall-clock diagnostics (excluded from the determinism contract)\n"
)

// WriteText renders the Prometheus-style text exposition: HELP/TYPE
// comments plus values, sorted by (class, name). The virtual-time section
// comes first; when includeHost is set, host-class metrics follow under a
// separator comment. Output is byte-stable for equal metric values.
func (r *Registry) WriteText(w io.Writer, includeHost bool) error {
	var b []byte
	cur := Class(255)
	for _, m := range r.sortedMetrics() {
		if m.class == ClassHost && !includeHost {
			continue
		}
		if m.class != cur {
			cur = m.class
			if cur == ClassHost {
				b = append(b, headerHost...)
			} else {
				b = append(b, headerVirtual...)
			}
		}
		b = append(b, "# HELP "...)
		b = append(b, m.name...)
		b = append(b, ' ')
		b = append(b, m.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, m.name...)
		b = append(b, ' ')
		b = append(b, m.kind.String()...)
		b = append(b, '\n')
		switch m.kind {
		case kindCounter:
			b = append(b, m.name...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, m.counter.Value(), 10)
			b = append(b, '\n')
		case kindGauge:
			b = append(b, m.name...)
			b = append(b, ' ')
			b = appendFloat(b, m.gauge.Value())
			b = append(b, '\n')
		case kindHistogram:
			counts, count, sum := m.hist.snapshot()
			cum := int64(0)
			for i, c := range counts {
				cum += c
				b = append(b, m.name...)
				b = append(b, `_bucket{le="`...)
				if i == len(counts)-1 {
					b = append(b, "+Inf"...)
				} else {
					b = appendFloat(b, m.hist.lo+m.hist.width*float64(i+1))
				}
				b = append(b, `"} `...)
				b = strconv.AppendInt(b, cum, 10)
				b = append(b, '\n')
			}
			b = append(b, m.name...)
			b = append(b, "_sum "...)
			b = appendFloat(b, sum)
			b = append(b, '\n')
			b = append(b, m.name...)
			b = append(b, "_count "...)
			b = strconv.AppendInt(b, count, 10)
			b = append(b, '\n')
			if count > 0 {
				for qi, q := range quantiles {
					b = append(b, m.name...)
					b = append(b, `{quantile="`...)
					b = append(b, quantileLabels[qi]...)
					b = append(b, `"} `...)
					b = appendFloat(b, binQuantile(counts, count, m.hist.lo, m.hist.width, q))
					b = append(b, '\n')
				}
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// appendJSONFloat renders a float as JSON, mapping non-finite values (an
// untouched min-clearance gauge is +Inf) to null.
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return append(b, "null"...)
	}
	return appendFloat(b, v)
}

// WriteJSON renders the snapshot as a JSON array of metric objects in the
// same deterministic (class, name) order as WriteText. Non-finite values
// render as null. The hand-rolled encoder keeps key order fixed.
func (r *Registry) WriteJSON(w io.Writer, includeHost bool) error {
	b := []byte("[\n")
	first := true
	for _, m := range r.sortedMetrics() {
		if m.class == ClassHost && !includeHost {
			continue
		}
		if !first {
			b = append(b, ",\n"...)
		}
		first = false
		b = append(b, ` {"name":"`...)
		b = append(b, m.name...)
		b = append(b, `","class":"`...)
		b = append(b, m.class.String()...)
		b = append(b, `","kind":"`...)
		b = append(b, m.kind.String()...)
		b = append(b, '"')
		switch m.kind {
		case kindCounter:
			b = append(b, `,"value":`...)
			b = strconv.AppendInt(b, m.counter.Value(), 10)
		case kindGauge:
			b = append(b, `,"value":`...)
			b = appendJSONFloat(b, m.gauge.Value())
		case kindHistogram:
			counts, count, sum := m.hist.snapshot()
			b = append(b, `,"count":`...)
			b = strconv.AppendInt(b, count, 10)
			b = append(b, `,"sum":`...)
			b = appendJSONFloat(b, sum)
			b = append(b, `,"lo":`...)
			b = appendJSONFloat(b, m.hist.lo)
			b = append(b, `,"width":`...)
			b = appendJSONFloat(b, m.hist.width)
			b = append(b, `,"counts":[`...)
			for i, c := range counts {
				if i > 0 {
					b = append(b, ',')
				}
				b = strconv.AppendInt(b, c, 10)
			}
			b = append(b, ']')
			b = append(b, `,"p50":`...)
			b = appendJSONFloat(b, binQuantile(counts, count, m.hist.lo, m.hist.width, 0.50))
			b = append(b, `,"p95":`...)
			b = appendJSONFloat(b, binQuantile(counts, count, m.hist.lo, m.hist.width, 0.95))
			b = append(b, `,"p99":`...)
			b = appendJSONFloat(b, binQuantile(counts, count, m.hist.lo, m.hist.width, 0.99))
		}
		b = append(b, '}')
	}
	b = append(b, "\n]\n"...)
	_, err := w.Write(b)
	return err
}
