package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// emitTestSpans writes two cycles of a realistic stage tree, deliberately
// interleaved so cycle 2's sensing is buffered before cycle 1's planning —
// the writer must still emit monotonic timestamps per lane.
func emitTestSpans(sw *SpanWriter) {
	ms := func(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }
	sw.DeclareProcess(PIDVirtual, "sov virtual time")
	sw.DeclareProcess(PIDHost, "host wall-clock")
	sw.DeclareThread(PIDVirtual, 1, "sensing")
	sw.DeclareThread(PIDVirtual, 2, "perception")
	sw.DeclareThread(PIDVirtual, 3, "depth")
	sw.DeclareThread(PIDVirtual, 4, "detect")
	sw.DeclareThread(PIDVirtual, 5, "track")
	sw.DeclareThread(PIDVirtual, 6, "vio")
	sw.DeclareThread(PIDVirtual, 7, "planning")

	// Cycle 1 at t0=0: detect+track (70+1) beats depth (40) and vio (30).
	sw.Span(PIDVirtual, 1, "sensing", "", 1, ms(0), ms(84))
	sw.Span(PIDVirtual, 2, "perception", "sensing", 1, ms(84), ms(71))
	sw.Span(PIDVirtual, 3, "depth", "perception", 1, ms(84), ms(40))
	sw.Span(PIDVirtual, 4, "detect", "perception", 1, ms(84), ms(70))
	sw.Span(PIDVirtual, 5, "track", "perception", 1, ms(154), ms(1))
	sw.Span(PIDVirtual, 6, "vio", "perception", 1, ms(84), ms(30))

	// Cycle 2 at t0=100 interleaves before cycle 1's planning: vio (90)
	// dominates depth (40) and detect+track (72).
	sw.Span(PIDVirtual, 1, "sensing", "", 2, ms(100), ms(80))
	sw.Span(PIDVirtual, 2, "perception", "sensing", 2, ms(180), ms(90))
	sw.Span(PIDVirtual, 3, "depth", "perception", 2, ms(180), ms(40))
	sw.Span(PIDVirtual, 4, "detect", "perception", 2, ms(180), ms(71))
	sw.Span(PIDVirtual, 5, "track", "perception", 2, ms(251), ms(1))
	sw.Span(PIDVirtual, 6, "vio", "perception", 2, ms(180), ms(90))

	sw.Span(PIDVirtual, 7, "planning", "perception", 1, ms(155), ms(3))
	sw.Span(PIDVirtual, 7, "planning", "perception", 2, ms(270), ms(3))

	// One host wall-clock span on the separate track.
	sw.Span(PIDHost, 1, "busy", "", 0, 0, ms(12))
}

// TestSpanWriterPerfettoSchema: the output must be valid JSON in the Chrome
// trace_event array form — metadata naming both processes, complete events
// with microsecond timestamps — and every (pid, tid) lane's timestamps must
// be non-decreasing despite interleaved emission.
func TestSpanWriterPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSpanWriter(&buf)
	emitTestSpans(sw)
	if sw.N() != 15 {
		t.Fatalf("buffered %d spans, want 15", sw.N())
	}
	n, err := sw.Close()
	if err != nil || n != 15 {
		t.Fatalf("Close = %d, %v", n, err)
	}

	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("span file is not valid JSON: %v", err)
	}
	meta, complete := 0, 0
	type lane struct{ pid, tid int }
	lastTS := map[lane]float64{}
	for _, ev := range events {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			l := lane{ev.Pid, ev.Tid}
			if prev, ok := lastTS[l]; ok && ev.Ts < prev {
				t.Fatalf("lane %+v timestamps regress: %v after %v", l, ev.Ts, prev)
			}
			lastTS[l] = ev.Ts
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 15 {
		t.Fatalf("complete events = %d, want 15", complete)
	}
	// 2 process_name + 7 thread_name metadata records.
	if meta != 9 {
		t.Fatalf("metadata events = %d, want 9", meta)
	}
	if !strings.Contains(buf.String(), `"name":"process_name","args":{"name":"sov virtual time"}`) {
		t.Fatal("virtual process track not labeled")
	}
	if !strings.Contains(buf.String(), `"name":"process_name","args":{"name":"host wall-clock"}`) {
		t.Fatal("host process track not labeled")
	}

	// Second Close is a no-op, not a duplicate write.
	sizeBefore := buf.Len()
	if _, err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != sizeBefore {
		t.Fatal("second Close rewrote the file")
	}
}

// TestSpanWriterDeterministicBytes: same spans, same bytes — even when the
// two writers buffer the events in different interleavings, the
// sort-at-Close canonicalizes the output.
func TestSpanWriterDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	swA := NewSpanWriter(&a)
	emitTestSpans(swA)
	if _, err := swA.Close(); err != nil {
		t.Fatal(err)
	}
	swB := NewSpanWriter(&b)
	emitTestSpans(swB)
	if _, err := swB.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical span streams produced different bytes")
	}
}

// TestSummarizeSpans reads back a SpanWriter file: per-stage distributions
// over virtual events only, and per-cycle critical-path attribution —
// detect+track dominates cycle 1, vio dominates cycle 2.
func TestSummarizeSpans(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSpanWriter(&buf)
	emitTestSpans(sw)
	if _, err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := SummarizeSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 14 || sum.HostEvents != 1 || sum.Cycles != 2 {
		t.Fatalf("events=%d host=%d cycles=%d, want 14/1/2", sum.Events, sum.HostEvents, sum.Cycles)
	}
	byName := map[string]StageSummary{}
	for _, st := range sum.Stages {
		byName[st.Name] = st
	}
	if s, ok := byName["sensing"]; !ok || s.DurMs.N != 2 || s.DurMs.Mean != 82 {
		t.Fatalf("sensing summary wrong: %+v", byName["sensing"])
	}
	if _, ok := byName["busy"]; ok {
		t.Fatal("host span leaked into virtual stage statistics")
	}
	wins := map[string]int{}
	for _, c := range sum.Critical {
		wins[c.Chain] = c.Cycles
	}
	if wins["detect+track"] != 1 || wins["vio"] != 1 || wins["depth"] != 0 {
		t.Fatalf("critical-path attribution wrong: %+v", sum.Critical)
	}

	// Malformed input surfaces as an error, not a zero summary.
	if _, err := SummarizeSpans(strings.NewReader("not json")); err == nil {
		t.Fatal("expected parse error for malformed span file")
	}
}
