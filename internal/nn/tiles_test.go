package nn

import (
	"testing"

	"sov/internal/cachesim"
)

// The GEMM column-block width is not a guess: this test replays the im2col
// backend's memory access stream — A-panel gather from the biased input,
// packed-panel writes, the per-row-panel multiply sweep, output writeback —
// through the cachesim LRU model for a range of block widths, and holds the
// shipped gemmColBlock at the measured miss-rate optimum. The replay uses
// the BENCH_quant conv shape (16ch 48×64 → 32ch 3×3 s1 p1), the shape the
// dispatcher routes to GEMM on the perception hot path.

const (
	tileInC, tileInH, tileInW = 16, 48, 64
	tileOutC, tileK, tilePad  = 32, 3, 1
)

// replayGEMMStream drives one full forwardGEMM's worth of accesses with
// column block width nc through the cache model. Regions are spaced so they
// never alias: ubuf (biased input bytes), abuf (the reused A-panel
// scratch), the packed B panels, and the int8 output plane.
func replayGEMMStream(c *cachesim.Cache, nc int) {
	const (
		ubase int64 = 0
		abase int64 = 1 << 20
		bbase int64 = 2 << 20
		obase int64 = 3 << 20
	)
	kd := tileInC * tileK * tileK
	np := swarPairs(kd)
	oh, ow := tileInH, tileInW // stride 1, pad 1
	p := oh * ow
	panelBytes := int64(np * 4 * 8)
	for colBase := 0; colBase < p; colBase += nc {
		cols := nc
		if colBase+cols > p {
			cols = p - colBase
		}
		groups := (cols + 3) / 4
		// A-pack: gather each column's taps (rows of K bytes, clipped at the
		// borders) and write its group panel.
		for g := 0; g < groups; g++ {
			for ci := 0; ci < 4; ci++ {
				col := colBase + g*4 + ci
				if col >= p {
					continue
				}
				oy, ox := col/ow, col%ow
				for ic := 0; ic < tileInC; ic++ {
					for ky := 0; ky < tileK; ky++ {
						iy := oy - tilePad + ky
						if iy < 0 || iy >= tileInH {
							continue
						}
						ix0 := ox - tilePad
						ix1 := ix0 + tileK
						if ix0 < 0 {
							ix0 = 0
						}
						if ix1 > tileInW {
							ix1 = tileInW
						}
						if ix1 > ix0 {
							c.Access(ubase+int64((ic*tileInH+iy)*tileInW+ix0), int64(ix1-ix0))
						}
					}
				}
			}
			c.Access(abase+int64(g)*panelBytes, panelBytes) // pack writes
		}
		// Multiply: every row panel streams B once and the whole A block.
		mpanels := (tileOutC + 3) / 4
		for rb := 0; rb < mpanels; rb++ {
			for g := 0; g < groups; g++ {
				c.Access(abase+int64(g)*panelBytes, panelBytes)
				c.Access(bbase+int64(rb)*panelBytes, panelBytes)
			}
			for r := 0; r < 4; r++ {
				o := rb*4 + r
				if o >= tileOutC {
					break
				}
				c.Access(obase+int64(o*p+colBase), int64(cols))
			}
		}
	}
}

// TestGEMMColBlockAtSweepOptimum sweeps the column block width and requires
// the shipped gemmColBlock to sit within 10% of the best measured miss
// rate. The sweep shape is the capacity cliff: blocks past ~128 columns
// outgrow the model cache (72 KB of A panel + 18 KB of B), while narrow
// blocks re-stream the B panels once per block.
func TestGEMMColBlockAtSweepOptimum(t *testing.T) {
	candidates := []int{32, 64, 128, 256, 512}
	rates := make(map[int]float64, len(candidates))
	best := 1.0
	for _, nc := range candidates {
		c := cachesim.New(cachesim.DefaultConfig())
		replayGEMMStream(c, nc)
		r := c.Stats().MissRate()
		rates[nc] = r
		if r < best {
			best = r
		}
		t.Logf("column block %3d: miss rate %.5f", nc, r)
	}
	shipped, ok := rates[gemmColBlock]
	if !ok {
		t.Fatalf("shipped gemmColBlock %d not in sweep candidates %v", gemmColBlock, candidates)
	}
	if shipped > best*1.10 {
		t.Fatalf("shipped gemmColBlock %d misses at %.5f, > 10%% above sweep optimum %.5f",
			gemmColBlock, shipped, best)
	}
}
