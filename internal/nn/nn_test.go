package nn

import (
	"math"
	"math/rand"
	"testing"

	"sov/internal/vision"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4)
	x.Set(1, 2, 3, 7)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("set/get")
	}
	if x.Numel() != 24 {
		t.Fatalf("numel = %d", x.Numel())
	}
}

func TestTensorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTensor(0, 1, 1)
}

func TestConvIdentityKernel(t *testing.T) {
	// A 1x1 conv with weight 1 is the identity.
	c := &Conv2D{InC: 1, OutC: 1, K: 1, Stride: 1, Pad: 0,
		Weights: []float32{1}, Bias: []float32{0}}
	in := NewTensor(1, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := c.Forward(in)
	for i := range out.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("identity conv changed data at %d", i)
		}
	}
}

func TestConvKnownSum(t *testing.T) {
	// 3x3 all-ones kernel over all-ones input, valid pad: every output is 9.
	c := &Conv2D{InC: 1, OutC: 1, K: 3, Stride: 1, Pad: 0,
		Weights: []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}, Bias: []float32{0}}
	in := NewTensor(1, 5, 5)
	for i := range in.Data {
		in.Data[i] = 1
	}
	out := c.Forward(in)
	if out.H != 3 || out.W != 3 {
		t.Fatalf("out shape = %dx%d", out.H, out.W)
	}
	for _, v := range out.Data {
		if v != 9 {
			t.Fatalf("conv sum = %v, want 9", v)
		}
	}
}

func TestConvPaddingShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(1, 4, 3, 1, 1, true, rng)
	out := c.Forward(NewTensor(1, 8, 10))
	if out.C != 4 || out.H != 8 || out.W != 10 {
		t.Fatalf("same-pad shape = %dx%dx%d", out.C, out.H, out.W)
	}
}

func TestConvStride(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(1, 2, 3, 2, 1, false, rng)
	out := c.Forward(NewTensor(1, 8, 8))
	if out.H != 4 || out.W != 4 {
		t.Fatalf("stride-2 shape = %dx%d", out.H, out.W)
	}
}

func TestConvReLUClampsNegative(t *testing.T) {
	c := &Conv2D{InC: 1, OutC: 1, K: 1, Stride: 1, Pad: 0,
		Weights: []float32{-1}, Bias: []float32{0}, ReLU: true}
	in := NewTensor(1, 2, 2)
	for i := range in.Data {
		in.Data[i] = 1
	}
	out := c.Forward(in)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatalf("relu output = %v", v)
		}
	}
}

func TestConvInputMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(3, 4, 3, 1, 1, false, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Forward(NewTensor(1, 8, 8))
}

func TestMaxPool(t *testing.T) {
	in := NewTensor(1, 2, 4)
	copy(in.Data, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	out := MaxPool2{}.Forward(in)
	if out.H != 1 || out.W != 2 {
		t.Fatalf("pool shape = %dx%d", out.H, out.W)
	}
	if out.At(0, 0, 0) != 6 || out.At(0, 0, 1) != 8 {
		t.Fatalf("pool values = %v", out.Data)
	}
}

func TestNetworkForwardShapes(t *testing.T) {
	y := NewTinyYOLO(120, 160, 4, 42)
	in := NewTensor(1, 120, 160)
	boxes := y.Infer(in)
	if len(boxes) != y.GridH*y.GridW {
		t.Fatalf("boxes = %d, want %d", len(boxes), y.GridH*y.GridW)
	}
	if y.GridH != 15 || y.GridW != 20 {
		t.Fatalf("grid = %dx%d", y.GridH, y.GridW)
	}
	for _, b := range boxes {
		if b.Objectness < 0 || b.Objectness > 1 || b.CX < 0 || b.CX > 1 ||
			b.CY < 0 || b.CY > 1 || b.W < 0 || b.W > 1 {
			t.Fatalf("box out of range: %+v", b)
		}
		if len(b.ClassScores) != 4 {
			t.Fatalf("classes = %d", len(b.ClassScores))
		}
	}
}

func TestInferDeterministic(t *testing.T) {
	a := NewTinyYOLO(56, 72, 2, 7)
	b := NewTinyYOLO(56, 72, 2, 7)
	in := NewTensor(1, 56, 72)
	for i := range in.Data {
		in.Data[i] = float32(i%13) / 13
	}
	ba := a.Infer(in)
	bb := b.Infer(in)
	for i := range ba {
		if ba[i].Objectness != bb[i].Objectness {
			t.Fatal("same seed, different outputs")
		}
	}
}

func TestFLOPsPositiveAndScales(t *testing.T) {
	small := NewTinyYOLO(56, 72, 2, 7)
	big := NewTinyYOLO(112, 144, 2, 7)
	fs, fb := small.TotalFLOPs(), big.TotalFLOPs()
	if fs <= 0 {
		t.Fatalf("flops = %d", fs)
	}
	// 4x pixels → ~4x FLOPs.
	ratio := float64(fb) / float64(fs)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("FLOP scaling = %v, want ~4", ratio)
	}
}

func TestFromImage(t *testing.T) {
	im := vision.NewImage(4, 3)
	im.Set(1, 1, 0.5)
	tn := FromImage(im)
	if tn.C != 1 || tn.H != 3 || tn.W != 4 {
		t.Fatalf("shape = %dx%dx%d", tn.C, tn.H, tn.W)
	}
	if tn.At(0, 1, 1) != 0.5 {
		t.Fatal("pixel copy wrong")
	}
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatalf("sigmoid(0) = %v", Sigmoid(0))
	}
	if math.Abs(float64(Sigmoid(10))-1) > 1e-4 || Sigmoid(-10) > 1e-4 {
		t.Fatal("sigmoid saturation wrong")
	}
}

func BenchmarkTinyYOLOInference(b *testing.B) {
	y := NewTinyYOLO(120, 160, 4, 42)
	in := NewTensor(1, 120, 160)
	for i := range in.Data {
		in.Data[i] = float32(i%31) / 31
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y.Infer(in)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := NewTensor(2, 2, 2)
	copy(in.Data, []float32{1, 2, 3, 4, 10, 20, 30, 40})
	out := GlobalAvgPool{}.Forward(in)
	if out.C != 2 || out.H != 1 || out.W != 1 {
		t.Fatalf("shape = %dx%dx%d", out.C, out.H, out.W)
	}
	if out.Data[0] != 2.5 || out.Data[1] != 25 {
		t.Fatalf("gap = %v", out.Data)
	}
}

func TestFCKnown(t *testing.T) {
	f := &FC{In: 2, Out: 1, Weights: []float32{2, -1}, Bias: []float32{0.5}}
	in := NewTensor(2, 1, 1)
	copy(in.Data, []float32{3, 4})
	out := f.Forward(in)
	if out.Data[0] != 2*3-4+0.5 {
		t.Fatalf("fc = %v", out.Data[0])
	}
}

func TestFCReLUAndPanic(t *testing.T) {
	f := &FC{In: 1, Out: 1, Weights: []float32{-1}, Bias: []float32{0}, ReLU: true}
	in := NewTensor(1, 1, 1)
	in.Data[0] = 5
	if f.Forward(in).Data[0] != 0 {
		t.Fatal("relu failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	f.Forward(NewTensor(3, 1, 1))
}

func TestSoftmaxProperties(t *testing.T) {
	p := Softmax([]float32{1, 2, 3})
	var sum float32
	for i := 1; i < len(p); i++ {
		if p[i] <= p[i-1] {
			t.Fatal("softmax not monotonic with logits")
		}
	}
	for _, v := range p {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("softmax sum = %v", sum)
	}
	// Large logits must not overflow.
	q := Softmax([]float32{1000, 1001})
	if math.IsNaN(float64(q[0])) || math.IsNaN(float64(q[1])) {
		t.Fatal("softmax overflowed")
	}
	if len(Softmax(nil)) != 0 {
		t.Fatal("empty softmax")
	}
}

func TestClassifierEndToEnd(t *testing.T) {
	c := NewClassifier(32, 32, 4, 5)
	crop := NewTensor(1, 32, 32)
	for i := range crop.Data {
		crop.Data[i] = float32(i%9) / 9
	}
	p := c.Classify(crop)
	if len(p) != 4 {
		t.Fatalf("classes = %d", len(p))
	}
	var sum float32
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", v)
		}
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Deterministic.
	p2 := NewClassifier(32, 32, 4, 5).Classify(crop)
	for i := range p {
		if p[i] != p2[i] {
			t.Fatal("classifier not deterministic")
		}
	}
	if c.TotalFLOPs() <= 0 {
		t.Fatal("flops")
	}
}
