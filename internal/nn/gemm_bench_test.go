package nn

import (
	"math/rand"
	"testing"
)

// benchPerceptionConv is the BENCH_quant conv shape: 16ch 48×64 → 32ch,
// 3×3 stride 1 pad 1 (kd = 144, P = 3072).
func benchPerceptionConv(b *testing.B) (*QConv2D, *QTensor, *QTensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	conv := NewConv2D(16, 32, 3, 1, 1, true, rng)
	qc := NewQConv2D(conv, ChooseQuantParams(-0.4, 0.6), ChooseQuantParams(-0.2, 0.9))
	in := NewQTensor(16, 48, 64, qc.InP)
	for i := range in.Data {
		in.Data[i] = int8(rng.Intn(256) - 128)
	}
	oc, oh, ow := qc.OutShape(in.C, in.H, in.W)
	out := NewQTensor(oc, oh, ow, qc.OutP)
	return qc, in, out
}

// BenchmarkQConvBackends pins each backend on the perception conv shape so
// the dispatcher crossover stays grounded in measured numbers.
func BenchmarkQConvBackends(b *testing.B) {
	b.Run("gemm", func(b *testing.B) {
		qc, in, out := benchPerceptionConv(b)
		_, oh, ow := qc.OutShape(in.C, in.H, in.W)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qc.forwardGEMM(in, out, oh, ow)
		}
	})
	b.Run("direct-swar", func(b *testing.B) {
		qc, in, out := benchPerceptionConv(b)
		qc.gemm.b = nil
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qc.ForwardInto(in, out)
		}
	})
}
