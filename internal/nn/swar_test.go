package nn

import (
	"math/rand"
	"testing"
)

// TestPairDotIdentity checks the SWAR pair-dot reconstruction against the
// scalar dot product over every length parity and the full code range.
func TestPairDotIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 255, 256, 257} {
		for trial := 0; trial < 8; trial++ {
			x := make([]int8, n)
			w := make([]int8, n)
			for i := range x {
				x[i] = int8(rng.Intn(256) - 128)
				w[i] = int8(rng.Intn(255) - 127) // weights are symmetric: |w| ≤ 127
			}
			// Force extremes into the mix.
			if n >= 2 {
				x[0], w[0] = -128, 127
				x[1], w[1] = 127, -127
			}
			var want int64
			for i := range x {
				want += int64(w[i]) * int64(x[i])
			}
			np := swarPairs(n)
			xp := make([]uint64, np)
			wp := make([]uint64, np)
			sumU := packPairsInto(xp, x)
			wsumB := packWeightPairsInto(wp, w)
			var s uint64
			for i := range xp {
				s += (xp[i] * wp[i]) >> 32
			}
			got := swarRowConst(0, wsumB, np) - 128*sumU + int64(s)
			if got != want {
				t.Fatalf("n=%d trial=%d: pair-dot %d != scalar %d", n, trial, got, want)
			}
		}
	}
}

// TestPackBiasedBytes checks the biased byte rewrite and the 8-byte lane
// loader agree on lane order.
func TestPackBiasedBytes(t *testing.T) {
	src := []int8{-128, -1, 0, 1, 127, -64, 64, 33}
	dst := make([]byte, len(src))
	packBiasedBytesInto(dst, src)
	for i, v := range src {
		if want := uint8(int16(v) + 128); dst[i] != want {
			t.Fatalf("byte %d: got %d want %d", i, dst[i], want)
		}
	}
	v := load8(dst, 0)
	for i := 0; i < 8; i++ {
		lane := uint8(v >> (8 * i))
		if lane != dst[i] {
			t.Fatalf("lane %d: got %d want %d", i, lane, dst[i])
		}
	}
}

// TestSpillLanes16 checks the even/odd 16-bit lane drain lands each lane on
// the right pixel with the right sign.
func TestSpillLanes16(t *testing.T) {
	var even, odd uint64
	for lane := 0; lane < 4; lane++ {
		even |= uint64(1000+lane) << (16 * lane) // pixels 0,2,4,6
		odd |= uint64(2000+lane) << (16 * lane)  // pixels 1,3,5,7
	}
	var acc [8]int32
	spillLanes16(&acc, even, odd, 1)
	spillLanes16(&acc, even, odd, -1)
	spillLanes16(&acc, even, odd, 1)
	for lane := 0; lane < 4; lane++ {
		if acc[2*lane] != int32(1000+lane) {
			t.Fatalf("even lane %d: got %d", lane, acc[2*lane])
		}
		if acc[2*lane+1] != int32(2000+lane) {
			t.Fatalf("odd lane %d: got %d", lane, acc[2*lane+1])
		}
	}
}
