package nn

import (
	"testing"

	"sov/internal/parallel"
)

// buildTestNet returns a small conv/pool stack and a deterministic input.
func buildTestNet() (*Network, *Tensor) {
	y := NewTinyYOLO(64, 48, 4, 7)
	in := NewTensor(1, 64, 48)
	for i := range in.Data {
		in.Data[i] = float32(i%251) / 251
	}
	return y.Backbone, in
}

func TestForwardPooledMatchesForward(t *testing.T) {
	net, in := buildTestNet()
	want := net.Forward(in)
	got := net.ForwardPooled(in)
	if got.C != want.C || got.H != want.H || got.W != want.W {
		t.Fatalf("shape %dx%dx%d != %dx%dx%d", got.C, got.H, got.W, want.C, want.H, want.W)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: pooled %v != fresh %v", i, got.Data[i], want.Data[i])
		}
	}
	PutTensor(got)
}

// TestForwardPooledSteadyStateAllocs is the satellite audit gate: a warm
// pooled forward pass on one worker must not allocate at all.
func TestForwardPooledSteadyStateAllocs(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	net, in := buildTestNet()
	run := func() { PutTensor(net.ForwardPooled(in)) }
	for i := 0; i < 4; i++ {
		run() // warm the tensor pools
	}
	if avg := testing.AllocsPerRun(20, run); avg > 0 {
		t.Fatalf("warm ForwardPooled allocates %.2f allocs/op, want 0", avg)
	}
}

func TestInferIntoMatchesInferAndReuses(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	y := NewTinyYOLO(64, 48, 4, 7)
	in := NewTensor(1, 64, 48)
	for i := range in.Data {
		in.Data[i] = float32((i*7)%193) / 193
	}
	want := y.Infer(in)
	out := y.InferInto(in, nil)
	if len(out) != len(want) {
		t.Fatalf("len %d != %d", len(out), len(want))
	}
	for i := range want {
		a, b := out[i], want[i]
		if a.CX != b.CX || a.CY != b.CY || a.W != b.W || a.H != b.H || a.Objectness != b.Objectness {
			t.Fatalf("cell %d differs: %+v != %+v", i, a, b)
		}
		for c := range b.ClassScores {
			if a.ClassScores[c] != b.ClassScores[c] {
				t.Fatalf("cell %d class %d differs", i, c)
			}
		}
	}
	run := func() { out = y.InferInto(in, out) }
	for i := 0; i < 4; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(20, run); avg > 0 {
		t.Fatalf("warm InferInto allocates %.2f allocs/op, want 0", avg)
	}
}
