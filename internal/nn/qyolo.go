package nn

import "sov/internal/parallel"

// QYOLOHead is the fixed-point grid detector: the TinyYOLO backbone and
// 1×1 head run entirely in int8 (int32 accumulators, fused requantization),
// and the decode evaluates sigmoid by 256-entry table lookup over the head's
// output codes instead of exponentials. Boxes land within a small, tested
// error budget of the float path (DESIGN.md §8).
type QYOLOHead struct {
	Backbone *QNetwork
	Head     *QConv2D
	Classes  int
	GridH    int
	GridW    int
	inC      int
	inH      int
	inW      int
	lut      *SigmoidLUT
}

// QuantizeYOLO converts a float YOLO head into its fixed-point counterpart,
// calibrating every activation range on the given representative input. The
// float model is left untouched.
func QuantizeYOLO(y *YOLOHead, calib *Tensor) *QYOLOHead {
	qb := QuantizeNetwork(y.Backbone, calib)
	feat := y.Backbone.Forward(calib)
	raw := y.Head.Forward(feat)
	lo, hi := tensorRange(raw)
	rawP := ChooseQuantParams(lo, hi)
	head := NewQConv2D(y.Head, qb.OutParams(), rawP)
	return &QYOLOHead{
		Backbone: qb,
		Head:     head,
		Classes:  y.Classes,
		GridH:    y.GridH,
		GridW:    y.GridW,
		inC:      1, inH: y.inH, inW: y.inW,
		lut: NewSigmoidLUT(rawP),
	}
}

// LUT exposes the head-output sigmoid table (the detection decode uses it
// to threshold and score cells in the int8 domain).
func (y *QYOLOHead) LUT() *SigmoidLUT { return y.lut }

// ForwardRaw runs the quantized forward pass and returns the raw int8 grid
// tensor, borrowed from the tensor pools — release it with PutQTensor. The
// input quantization (float image → int8 codes) is the only non-integer
// step on the path.
func (y *QYOLOHead) ForwardRaw(in *Tensor) *QTensor {
	qin := GetQTensor(in.C, in.H, in.W, y.Backbone.InParams)
	QuantizeTensorInto(qin, in)
	feat := y.Backbone.ForwardPooled(qin)
	oc, oh, ow := y.Head.OutShape(feat.C, feat.H, feat.W)
	raw := GetQTensor(oc, oh, ow, y.Head.OutParams())
	y.Head.ForwardInto(feat, raw)
	if feat != qin {
		PutQTensor(feat)
	}
	PutQTensor(qin)
	return raw
}

// Infer runs the fixed-point forward pass and decodes every grid cell.
func (y *QYOLOHead) Infer(in *Tensor) []GridBox {
	return y.InferInto(in, nil)
}

// InferInto is the reusing variant of Infer: pass the previous cycle's slice
// back in and a warm steady state allocates nothing beyond the decode
// slots' first-time ClassScores arrays.
func (y *QYOLOHead) InferInto(in *Tensor, out []GridBox) []GridBox {
	raw := y.ForwardRaw(in)
	n := raw.H * raw.W
	if cap(out) < n {
		grown := make([]GridBox, n)
		copy(grown, out) // keep already-allocated ClassScores backing arrays
		out = grown
	}
	out = out[:n]
	if parallel.Workers() <= 1 {
		for gy := 0; gy < raw.H; gy++ {
			for gx := 0; gx < raw.W; gx++ {
				y.decodeCellQ(raw, gy, gx, &out[gy*raw.W+gx])
			}
		}
	} else {
		parallel.ForRows(raw.H, func(g0, g1 int) {
			for gy := g0; gy < g1; gy++ {
				for gx := 0; gx < raw.W; gx++ {
					y.decodeCellQ(raw, gy, gx, &out[gy*raw.W+gx])
				}
			}
		})
	}
	PutQTensor(raw)
	return out
}

// decodeCellQ decodes one grid cell from its int8 codes via the sigmoid
// table.
//
//sov:hotpath
func (y *QYOLOHead) decodeCellQ(raw *QTensor, gy, gx int, b *GridBox) {
	lut := y.lut
	b.Objectness = lut.At(raw.At(0, gy, gx))
	b.CX = (float32(gx) + lut.At(raw.At(1, gy, gx))) / float32(raw.W)
	b.CY = (float32(gy) + lut.At(raw.At(2, gy, gx))) / float32(raw.H)
	b.W = lut.At(raw.At(3, gy, gx))
	b.H = lut.At(raw.At(4, gy, gx))
	if cap(b.ClassScores) < y.Classes {
		//sovlint:ignore hotalloc first-time slot growth; steady state reuses the caller's ClassScores arrays
		b.ClassScores = make([]float32, y.Classes)
	}
	b.ClassScores = b.ClassScores[:y.Classes]
	for c := 0; c < y.Classes; c++ {
		b.ClassScores[c] = lut.At(raw.At(5+c, gy, gx))
	}
}

// TotalFLOPs mirrors the float head's MAC estimate (the work count is
// unchanged; only the arithmetic width shrinks).
func (y *QYOLOHead) TotalFLOPs() int64 {
	var f int64
	c, h, w := y.inC, y.inH, y.inW
	for _, l := range y.Backbone.Layers {
		switch t := l.(type) {
		case *QConv2D:
			oc, oh, ow := t.OutShape(c, h, w)
			f += int64(oc) * int64(oh) * int64(ow) * int64(t.InC) * int64(t.K*t.K) * 2
		}
		c, h, w = l.OutShape(c, h, w)
	}
	oc, oh, ow := y.Head.OutShape(c, h, w)
	f += int64(oc) * int64(oh) * int64(ow) * int64(y.Head.InC) * int64(y.Head.K*y.Head.K) * 2
	return f
}
