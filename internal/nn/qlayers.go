package nn

import (
	"fmt"

	"sov/internal/parallel"
)

// QLayer is one stage of a quantized network. Layers consume and produce
// int8 tensors directly — there is no float round-trip between stages; the
// requantization from the int32 accumulator domain to the next layer's
// int8 domain is fused into each kernel.
type QLayer interface {
	// ForwardInto computes the layer output into out, which must have the
	// layer's OutShape and OutParams. Every output element is written.
	ForwardInto(in, out *QTensor)
	OutShape(c, h, w int) (int, int, int)
	// OutParams is the quantization of the layer's output tensor.
	OutParams() QuantParams
	Name() string
}

// ceilDiv returns ceil(a/b) for non-negative a, positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// QConv2D is the fused int8 convolution: conv + bias + ReLU + requantize in
// one pass. Interior output pixels (full receptive field) accumulate with a
// zero-point-folded bias over a branch-free inner loop; border pixels take
// the exact per-tap path. Accumulation is int32 throughout.
type QConv2D struct {
	InC, OutC int
	K         int
	Stride    int
	Pad       int
	Weights   []int8  // [outC][inC][K][K], symmetric per-tensor
	Bias      []int32 // accumulator domain (inScale × weightScale)
	// foldedBias is Bias minus zeroIn × Σ(weights of the channel): the
	// full-window accumulation then needs no per-tap zero-point subtraction.
	foldedBias []int32
	InP, OutP  QuantParams
	WScale     float32
	ReLU       bool
	rq         requant
	zeroIn     int32
	// scratch is the serial path's int32 accumulator row (grown on first
	// use, reused forever); parallel workers borrow theirs from the pools.
	scratch []int32
}

// NewQConv2D quantizes a float convolution for the given input/output
// activation quantizations.
func NewQConv2D(c *Conv2D, in, out QuantParams) *QConv2D {
	w, ws := quantizeWeights(c.Weights)
	q := &QConv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		Weights: w, InP: in, OutP: out, WScale: ws, ReLU: c.ReLU,
		zeroIn: in.Zero,
	}
	accScale := in.Scale * ws
	q.Bias = quantizeBias(c.Bias, accScale)
	q.foldedBias = make([]int32, c.OutC)
	per := c.InC * c.K * c.K
	for o := 0; o < c.OutC; o++ {
		var wsum int32
		for _, v := range w[o*per : (o+1)*per] {
			wsum += int32(v)
		}
		q.foldedBias[o] = q.Bias[o] - in.Zero*wsum
	}
	q.rq = newRequant(float64(accScale)/float64(out.Scale), out.Zero, c.ReLU)
	return q
}

// Name implements QLayer.
func (c *QConv2D) Name() string { return fmt.Sprintf("qconv%dx%d/%d->%d", c.K, c.K, c.InC, c.OutC) }

// OutShape implements QLayer.
func (c *QConv2D) OutShape(_, h, w int) (int, int, int) {
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return c.OutC, oh, ow
}

// OutParams implements QLayer.
func (c *QConv2D) OutParams() QuantParams { return c.OutP }

// Forward allocates the output and runs the kernel (test convenience; the
// hot path is ForwardInto over pooled tensors).
func (c *QConv2D) Forward(in *QTensor) *QTensor {
	oc, oh, ow := c.OutShape(in.C, in.H, in.W)
	out := NewQTensor(oc, oh, ow, c.OutP)
	c.ForwardInto(in, out)
	return out
}

// ForwardInto implements QLayer. Output channels are independent and fan
// out across the worker pool; integer accumulation is exact, so the output
// is byte-identical for any worker count.
//
//sov:hotpath
func (c *QConv2D) ForwardInto(in, out *QTensor) {
	if in.C != c.InC {
		panic(fmt.Sprintf("nn: qconv input channels %d != %d", in.C, c.InC))
	}
	oc, oh, ow := c.OutShape(in.C, in.H, in.W)
	if out.C != oc || out.H != oh || out.W != ow {
		panic(fmt.Sprintf("nn: qconv output shape %dx%dx%d != %dx%dx%d", out.C, out.H, out.W, oc, oh, ow))
	}
	if parallel.Workers() <= 1 {
		oxLo, oxHi := c.interior(in.W, ow)
		if n := oxHi - oxLo; cap(c.scratch) < n {
			//sovlint:ignore hotalloc first-call scratch growth; warm passes reuse the accumulator row
			c.scratch = make([]int32, n)
		}
		for o := 0; o < oc; o++ {
			c.forwardChannel(in, out, o, oh, ow, c.scratch)
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(oc, 1, func(o0, o1 int) {
		oxLo, oxHi := c.interior(in.W, ow)
		acc := parallel.GetI32(oxHi - oxLo)
		for o := o0; o < o1; o++ {
			c.forwardChannel(in, out, o, oh, ow, acc)
		}
		parallel.PutI32(acc)
	})
}

// interior returns the [oxLo, oxHi) output-column range whose full K-wide
// window fits horizontally inside the input.
func (c *QConv2D) interior(inW, ow int) (oxLo, oxHi int) {
	oxLo = ceilDiv(c.Pad, c.Stride)
	oxHi = (inW-c.K+c.Pad)/c.Stride + 1
	if oxLo > ow {
		oxLo = ow
	}
	if oxHi > ow {
		oxHi = ow
	}
	if oxHi < oxLo {
		oxHi = oxLo
	}
	return oxLo, oxHi
}

// forwardChannel computes one output channel of the fused convolution.
// Interior output rows accumulate tap-major: each weight is hoisted into a
// register once and swept across an int32 accumulator row (borrowed from
// the parallel pools), so the hot loop is a branch-free widening
// multiply-add with no per-pixel slicing. Integer addition is exact and
// associative, so the reordering cannot perturb results.
//
//sov:hotpath
func (c *QConv2D) forwardChannel(in, out *QTensor, o, oh, ow int, scratch []int32) {
	per := c.InC * c.K * c.K
	wBase := o * per
	fold := c.foldedBias[o]
	rq := c.rq
	oxLo, oxHi := c.interior(in.W, ow)
	n := oxHi - oxLo
	acc := scratch[:n]
	k3s1 := c.K == 3 && c.Stride == 1
	for oy := 0; oy < oh; oy++ {
		iy0 := oy*c.Stride - c.Pad
		rowFull := iy0 >= 0 && iy0+c.K <= in.H
		outRow := out.Data[(o*oh+oy)*ow : (o*oh+oy+1)*ow]
		if !rowFull {
			for ox := 0; ox < ow; ox++ {
				outRow[ox] = rq.apply(c.accEdge(in, wBase, iy0, ox*c.Stride-c.Pad))
			}
			continue
		}
		for ox := 0; ox < oxLo; ox++ {
			outRow[ox] = rq.apply(c.accEdge(in, wBase, iy0, ox*c.Stride-c.Pad))
		}
		if n > 0 {
			for j := range acc {
				acc[j] = fold
			}
			ix0 := oxLo*c.Stride - c.Pad
			for ic := 0; ic < c.InC; ic++ {
				wc := wBase + ic*c.K*c.K
				chanBase := (ic*in.H+iy0)*in.W + ix0
				for ky := 0; ky < c.K; ky++ {
					rowBase := chanBase + ky*in.W
					if k3s1 {
						w0 := int32(c.Weights[wc+ky*3])
						w1 := int32(c.Weights[wc+ky*3+1])
						w2 := int32(c.Weights[wc+ky*3+2])
						r := in.Data[rowBase : rowBase+n+2]
						for j, a := range acc {
							acc[j] = a + w0*int32(r[j]) + w1*int32(r[j+1]) + w2*int32(r[j+2])
						}
						continue
					}
					for kx := 0; kx < c.K; kx++ {
						w := int32(c.Weights[wc+ky*c.K+kx])
						if w == 0 {
							continue
						}
						r := in.Data[rowBase+kx:]
						for j := range acc {
							acc[j] += w * int32(r[j*c.Stride])
						}
					}
				}
			}
			for j, a := range acc {
				outRow[oxLo+j] = rq.apply(a)
			}
		}
		for ox := oxHi; ox < ow; ox++ {
			outRow[ox] = rq.apply(c.accEdge(in, wBase, iy0, ox*c.Stride-c.Pad))
		}
	}
}

// accEdge accumulates one output pixel whose window is clipped by the
// image border: only valid taps contribute, each with the exact per-tap
// zero-point subtraction (clipped taps see real 0, which is the zero point
// itself, so they contribute nothing — identical semantics to the float
// kernel's implicit zero padding).
//
//sov:hotpath
func (c *QConv2D) accEdge(in *QTensor, wBase, iy0, ix0 int) int32 {
	ky0, ky1 := 0, c.K
	if iy0 < 0 {
		ky0 = -iy0
	}
	if iy0+c.K > in.H {
		ky1 = in.H - iy0
	}
	kx0, kx1 := 0, c.K
	if ix0 < 0 {
		kx0 = -ix0
	}
	if ix0+c.K > in.W {
		kx1 = in.W - ix0
	}
	sum := c.Bias[wBase/(c.InC*c.K*c.K)]
	zero := c.zeroIn
	for ic := 0; ic < c.InC; ic++ {
		wc := wBase + ic*c.K*c.K
		chanBase := ic * in.H * in.W
		for ky := ky0; ky < ky1; ky++ {
			rowBase := chanBase + (iy0+ky)*in.W + ix0
			wRow := wc + ky*c.K
			for kx := kx0; kx < kx1; kx++ {
				sum += int32(c.Weights[wRow+kx]) * (int32(in.Data[rowBase+kx]) - zero)
			}
		}
	}
	return sum
}

// QMaxPool2 is the 2×2 stride-2 max pool over int8 codes. Quantization is
// monotonic, so pooling codes equals pooling real values; parameters pass
// through unchanged and the kernel is exact.
type QMaxPool2 struct {
	P QuantParams
}

// Name implements QLayer.
func (QMaxPool2) Name() string { return "qmaxpool2" }

// OutShape implements QLayer.
func (QMaxPool2) OutShape(c, h, w int) (int, int, int) { return c, h / 2, w / 2 }

// OutParams implements QLayer.
func (p QMaxPool2) OutParams() QuantParams { return p.P }

// ForwardInto implements QLayer.
//
//sov:hotpath
func (p QMaxPool2) ForwardInto(in, out *QTensor) {
	if out.C != in.C || out.H != in.H/2 || out.W != in.W/2 {
		panic(fmt.Sprintf("nn: qpool output shape %dx%dx%d != %dx%dx%d", out.C, out.H, out.W, in.C, in.H/2, in.W/2))
	}
	if parallel.Workers() <= 1 {
		for c := 0; c < in.C; c++ {
			qpoolChannel(in, out, c)
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(in.C, 1, func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			qpoolChannel(in, out, c)
		}
	})
}

// qpoolChannel max-pools one channel of int8 codes.
//
//sov:hotpath
func qpoolChannel(in, out *QTensor, c int) {
	for y := 0; y < out.H; y++ {
		top := in.Data[(c*in.H+2*y)*in.W : (c*in.H+2*y+1)*in.W]
		bot := in.Data[(c*in.H+2*y+1)*in.W : (c*in.H+2*y+2)*in.W]
		outRow := out.Data[(c*out.H+y)*out.W : (c*out.H+y+1)*out.W]
		for x := 0; x < out.W; x++ {
			m := top[2*x]
			if v := top[2*x+1]; v > m {
				m = v
			}
			if v := bot[2*x]; v > m {
				m = v
			}
			if v := bot[2*x+1]; v > m {
				m = v
			}
			outRow[x] = m
		}
	}
}

// QGlobalAvgPool averages each channel in the integer domain (rounded
// division by the pixel count); parameters pass through unchanged.
type QGlobalAvgPool struct {
	P QuantParams
}

// Name implements QLayer.
func (QGlobalAvgPool) Name() string { return "qgap" }

// OutShape implements QLayer.
func (QGlobalAvgPool) OutShape(c, _, _ int) (int, int, int) { return c, 1, 1 }

// OutParams implements QLayer.
func (p QGlobalAvgPool) OutParams() QuantParams { return p.P }

// ForwardInto implements QLayer.
//
//sov:hotpath
func (p QGlobalAvgPool) ForwardInto(in, out *QTensor) {
	if out.C != in.C || out.H != 1 || out.W != 1 {
		panic(fmt.Sprintf("nn: qgap output shape %dx%dx%d != %dx1x1", out.C, out.H, out.W, in.C))
	}
	n := int32(in.H * in.W)
	if parallel.Workers() <= 1 {
		for c := 0; c < in.C; c++ {
			out.Data[c] = qgapChannel(in, c, n)
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(in.C, 4, func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			out.Data[c] = qgapChannel(in, c, n)
		}
	})
}

// qgapChannel sums one channel and divides with round-half-away-from-zero.
//
//sov:hotpath
func qgapChannel(in *QTensor, c int, n int32) int8 {
	var sum int32
	for _, v := range in.Data[c*in.H*in.W : (c+1)*in.H*in.W] {
		sum += int32(v)
	}
	if sum >= 0 {
		return satInt8((2*sum + n) / (2 * n))
	}
	return satInt8(-((2*(-sum) + n) / (2 * n)))
}

// QFC is the fused int8 fully-connected layer: dot product + bias + ReLU +
// requantize, with the zero-point folded into the bias (every input element
// is always valid, so the fold is exact everywhere).
type QFC struct {
	In, Out    int
	Weights    []int8
	foldedBias []int32
	InP, OutP  QuantParams
	WScale     float32
	ReLU       bool
	rq         requant
	// xbuf holds the serial path's widened input row (grown on first use,
	// reused forever); parallel callers borrow theirs from the pools.
	xbuf []int32
}

// NewQFC quantizes a float FC layer for the given activation quantizations.
func NewQFC(f *FC, in, out QuantParams) *QFC {
	w, ws := quantizeWeights(f.Weights)
	q := &QFC{In: f.In, Out: f.Out, Weights: w, InP: in, OutP: out, WScale: ws, ReLU: f.ReLU}
	accScale := in.Scale * ws
	bias := quantizeBias(f.Bias, accScale)
	q.foldedBias = make([]int32, f.Out)
	for o := 0; o < f.Out; o++ {
		var wsum int32
		for _, v := range w[o*f.In : (o+1)*f.In] {
			wsum += int32(v)
		}
		q.foldedBias[o] = bias[o] - in.Zero*wsum
	}
	q.rq = newRequant(float64(accScale)/float64(out.Scale), out.Zero, f.ReLU)
	return q
}

// Name implements QLayer.
func (f *QFC) Name() string { return fmt.Sprintf("qfc/%d->%d", f.In, f.Out) }

// OutShape implements QLayer.
func (f *QFC) OutShape(_, _, _ int) (int, int, int) { return f.Out, 1, 1 }

// OutParams implements QLayer.
func (f *QFC) OutParams() QuantParams { return f.OutP }

// ForwardInto implements QLayer. The int8 input row is widened to int32
// once, then output rows are computed two at a time so every input load is
// shared by two weight rows. Output rows are independent integer dot
// products — exact for any worker count.
//
//sov:hotpath
func (f *QFC) ForwardInto(in, out *QTensor) {
	if len(in.Data) != f.In {
		panic(fmt.Sprintf("nn: qfc input %d != %d", len(in.Data), f.In))
	}
	if len(out.Data) != f.Out {
		panic(fmt.Sprintf("nn: qfc output %d != %d", len(out.Data), f.Out))
	}
	quads := f.Out / 4
	if parallel.Workers() <= 1 {
		if cap(f.xbuf) < f.In {
			//sovlint:ignore hotalloc first-call scratch growth; warm passes reuse the widened input row
			f.xbuf = make([]int32, f.In)
		}
		xs := f.xbuf[:f.In]
		for i, v := range in.Data {
			xs[i] = int32(v)
		}
		for q := 0; q < quads; q++ {
			f.forwardRowQuad(xs, 4*q, out.Data)
		}
		f.forwardTail(xs, 4*quads, out.Data)
		return
	}
	xs := parallel.GetI32(f.In)
	for i, v := range in.Data {
		xs[i] = int32(v)
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(quads, 4, func(q0, q1 int) {
		for q := q0; q < q1; q++ {
			f.forwardRowQuad(xs, 4*q, out.Data)
		}
	})
	f.forwardTail(xs, 4*quads, out.Data)
	parallel.PutI32(xs)
}

// forwardTail finishes the ≤3 output rows left over by the quad sweep.
//
//sov:hotpath
func (f *QFC) forwardTail(xs []int32, o int, dst []int8) {
	if o+2 <= f.Out {
		f.forwardRowPair(xs, o, dst)
		o += 2
	}
	if o < f.Out {
		dst[o] = f.forwardRow(xs, o)
	}
}

// forwardRowQuad computes four fused output elements against the widened
// input row: each x load feeds four weight rows, so the multiply ports stay
// saturated while the load traffic per MAC drops to a quarter of the
// row-at-a-time sweep's.
//
//sov:hotpath
func (f *QFC) forwardRowQuad(xs []int32, o int, dst []int8) {
	r0 := f.Weights[o*f.In : (o+1)*f.In]
	r1 := f.Weights[(o+1)*f.In : (o+2)*f.In]
	r2 := f.Weights[(o+2)*f.In : (o+3)*f.In]
	r3 := f.Weights[(o+3)*f.In : (o+4)*f.In]
	xs = xs[:len(r0)]
	r1 = r1[:len(r0)]
	r2 = r2[:len(r0)]
	r3 = r3[:len(r0)]
	var a, b, c, d int32
	i := 0
	for ; i+2 <= len(xs); i += 2 {
		x0, x1 := xs[i], xs[i+1]
		a += int32(r0[i])*x0 + int32(r0[i+1])*x1
		b += int32(r1[i])*x0 + int32(r1[i+1])*x1
		c += int32(r2[i])*x0 + int32(r2[i+1])*x1
		d += int32(r3[i])*x0 + int32(r3[i+1])*x1
	}
	for ; i < len(xs); i++ {
		x := xs[i]
		a += int32(r0[i]) * x
		b += int32(r1[i]) * x
		c += int32(r2[i]) * x
		d += int32(r3[i]) * x
	}
	dst[o] = f.rq.apply(f.foldedBias[o] + a)
	dst[o+1] = f.rq.apply(f.foldedBias[o+1] + b)
	dst[o+2] = f.rq.apply(f.foldedBias[o+2] + c)
	dst[o+3] = f.rq.apply(f.foldedBias[o+3] + d)
}

// forwardRowPair computes two fused output elements against the widened
// input row: each x load feeds both weight rows, and the ×4 unroll keeps
// four independent accumulator chains in flight.
//
//sov:hotpath
func (f *QFC) forwardRowPair(xs []int32, o int, dst []int8) {
	r0 := f.Weights[o*f.In : (o+1)*f.In]
	r1 := f.Weights[(o+1)*f.In : (o+2)*f.In]
	xs = xs[:len(r0)]
	r1 = r1[:len(r0)]
	var a0, a1, b0, b1 int32
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		x0, x1, x2, x3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
		a0 += int32(r0[i])*x0 + int32(r0[i+2])*x2
		a1 += int32(r0[i+1])*x1 + int32(r0[i+3])*x3
		b0 += int32(r1[i])*x0 + int32(r1[i+2])*x2
		b1 += int32(r1[i+1])*x1 + int32(r1[i+3])*x3
	}
	for ; i < len(xs); i++ {
		a0 += int32(r0[i]) * xs[i]
		b0 += int32(r1[i]) * xs[i]
	}
	dst[o] = f.rq.apply(f.foldedBias[o] + a0 + a1)
	dst[o+1] = f.rq.apply(f.foldedBias[o+1] + b0 + b1)
}

// forwardRow computes one fused output element: widened dot product with
// four independent accumulator chains (the odd trailing row of a pair-wise
// sweep).
//
//sov:hotpath
func (f *QFC) forwardRow(xs []int32, o int) int8 {
	row := f.Weights[o*f.In : (o+1)*f.In]
	xs = xs[:len(row)]
	var a0, a1, a2, a3 int32
	i := 0
	for ; i+4 <= len(row); i += 4 {
		a0 += int32(row[i]) * xs[i]
		a1 += int32(row[i+1]) * xs[i+1]
		a2 += int32(row[i+2]) * xs[i+2]
		a3 += int32(row[i+3]) * xs[i+3]
	}
	acc := f.foldedBias[o] + a0 + a1 + a2 + a3
	for ; i < len(row); i++ {
		acc += int32(row[i]) * xs[i]
	}
	return f.rq.apply(acc)
}

// QNetwork is an ordered stack of quantized layers with the input tensor's
// quantization.
type QNetwork struct {
	Layers   []QLayer
	InParams QuantParams
}

// ForwardPooled runs the stack with every intermediate activation borrowed
// from the quantized tensor pools; a warm steady state allocates nothing.
// The returned tensor is pooled — release it with PutQTensor (unless it is
// the input itself, returned unchanged for an empty stack).
func (n *QNetwork) ForwardPooled(in *QTensor) *QTensor {
	cur := in
	for _, l := range n.Layers {
		c, h, w := l.OutShape(cur.C, cur.H, cur.W)
		out := GetQTensor(c, h, w, l.OutParams())
		l.ForwardInto(cur, out)
		if cur != in {
			PutQTensor(cur)
		}
		cur = out
	}
	return cur
}

// OutParams returns the quantization of the network's output tensor.
func (n *QNetwork) OutParams() QuantParams {
	if len(n.Layers) == 0 {
		return n.InParams
	}
	return n.Layers[len(n.Layers)-1].OutParams()
}

// QuantizeNetwork converts a float network into a fused int8 network.
// calib is a representative input: each activation's quantization is fitted
// to its observed range on the calibration pass (weights quantize
// symmetrically per tensor; biases land in the int32 accumulator domain).
// The float network is left untouched.
func QuantizeNetwork(net *Network, calib *Tensor) *QNetwork {
	qn := &QNetwork{}
	lo, hi := tensorRange(calib)
	cur := ChooseQuantParams(lo, hi)
	qn.InParams = cur
	act := calib
	for _, l := range net.Layers {
		out := l.Forward(act)
		switch t := l.(type) {
		case *Conv2D:
			olo, ohi := tensorRange(out)
			op := ChooseQuantParams(olo, ohi)
			qn.Layers = append(qn.Layers, NewQConv2D(t, cur, op))
			cur = op
		case *FC:
			olo, ohi := tensorRange(out)
			op := ChooseQuantParams(olo, ohi)
			qn.Layers = append(qn.Layers, NewQFC(t, cur, op))
			cur = op
		case MaxPool2:
			qn.Layers = append(qn.Layers, QMaxPool2{P: cur})
		case GlobalAvgPool:
			qn.Layers = append(qn.Layers, QGlobalAvgPool{P: cur})
		default:
			panic("nn: cannot quantize layer " + l.Name())
		}
		act = out
	}
	return qn
}
