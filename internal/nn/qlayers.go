package nn

import (
	"fmt"

	"sov/internal/parallel"
)

// QLayer is one stage of a quantized network. Layers consume and produce
// int8 tensors directly — there is no float round-trip between stages; the
// requantization from the int32 accumulator domain to the next layer's
// int8 domain is fused into each kernel.
type QLayer interface {
	// ForwardInto computes the layer output into out, which must have the
	// layer's OutShape and OutParams. Every output element is written.
	ForwardInto(in, out *QTensor)
	OutShape(c, h, w int) (int, int, int)
	// OutParams is the quantization of the layer's output tensor.
	OutParams() QuantParams
	Name() string
}

// ceilDiv returns ceil(a/b) for non-negative a, positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// QConv2D is the fused int8 convolution: conv + bias + ReLU + requantize in
// one pass. Interior output pixels (full receptive field) accumulate with a
// zero-point-folded bias over a branch-free inner loop; border pixels take
// the exact per-tap path. Accumulation is int32 throughout.
type QConv2D struct {
	InC, OutC int
	K         int
	Stride    int
	Pad       int
	Weights   []int8  // [outC][inC][K][K], symmetric per-tensor
	Bias      []int32 // accumulator domain (inScale × weightScale)
	// foldedBias is Bias minus zeroIn × Σ(weights of the channel): the
	// full-window accumulation then needs no per-tap zero-point subtraction.
	foldedBias []int32
	InP, OutP  QuantParams
	WScale     float32
	ReLU       bool
	rq         requant
	zeroIn     int32
	// scratch is the serial path's int32 accumulator row (grown on first
	// use, reused forever); parallel workers borrow theirs from the pools.
	scratch []int32
	// swarFold is foldedBias − 128·Σw per output channel: the constant that
	// rebases the SWAR interior's biased-domain accumulation (swar.go).
	swarFold []int32
	// ubuf is the input tensor as biased bytes u = x+128, packed once per
	// forward pass before any fan-out (read-only to the workers).
	ubuf []byte
	// gemm is the im2col GEMM backend (gemm.go), built at construction for
	// eligible shapes.
	gemm gemmState
}

// NewQConv2D quantizes a float convolution for the given input/output
// activation quantizations.
func NewQConv2D(c *Conv2D, in, out QuantParams) *QConv2D {
	w, ws := quantizeWeights(c.Weights)
	q := &QConv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		Weights: w, InP: in, OutP: out, WScale: ws, ReLU: c.ReLU,
		zeroIn: in.Zero,
	}
	accScale := in.Scale * ws
	q.Bias = quantizeBias(c.Bias, accScale)
	q.foldedBias = make([]int32, c.OutC)
	q.swarFold = make([]int32, c.OutC)
	per := c.InC * c.K * c.K
	for o := 0; o < c.OutC; o++ {
		var wsum int32
		for _, v := range w[o*per : (o+1)*per] {
			wsum += int32(v)
		}
		q.foldedBias[o] = q.Bias[o] - in.Zero*wsum
		q.swarFold[o] = q.foldedBias[o] - 128*wsum
	}
	q.rq = newRequant(float64(accScale)/float64(out.Scale), out.Zero, c.ReLU)
	q.initGEMM()
	return q
}

// packInput rewrites the input tensor as biased bytes into c.ubuf (the SWAR
// interior and the GEMM A-panel packer both read it through 8-byte loads).
//
//sov:hotpath
func (c *QConv2D) packInput(in *QTensor) {
	n := len(in.Data)
	if cap(c.ubuf) < n {
		//sovlint:ignore hotalloc first-call scratch growth; warm passes reuse the biased byte buffer
		c.ubuf = make([]byte, n)
	}
	packBiasedBytesInto(c.ubuf[:n], in.Data)
}

// Name implements QLayer.
func (c *QConv2D) Name() string { return fmt.Sprintf("qconv%dx%d/%d->%d", c.K, c.K, c.InC, c.OutC) }

// OutShape implements QLayer.
func (c *QConv2D) OutShape(_, h, w int) (int, int, int) {
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return c.OutC, oh, ow
}

// OutParams implements QLayer.
func (c *QConv2D) OutParams() QuantParams { return c.OutP }

// Forward allocates the output and runs the kernel (test convenience; the
// hot path is ForwardInto over pooled tensors).
func (c *QConv2D) Forward(in *QTensor) *QTensor {
	oc, oh, ow := c.OutShape(in.C, in.H, in.W)
	out := NewQTensor(oc, oh, ow, c.OutP)
	c.ForwardInto(in, out)
	return out
}

// ForwardInto implements QLayer. The dispatcher (gemm.go) sends deep, wide
// layers to the im2col GEMM backend; everything else runs the direct
// tap-major kernel, whose stride-1 interior accumulates in SWAR 16-bit
// lanes. Both paths are exact integer arithmetic over independent work
// units, so the output is byte-identical across backends and worker counts.
//
//sov:hotpath
func (c *QConv2D) ForwardInto(in, out *QTensor) {
	if in.C != c.InC {
		panic(fmt.Sprintf("nn: qconv input channels %d != %d", in.C, c.InC))
	}
	oc, oh, ow := c.OutShape(in.C, in.H, in.W)
	if out.C != oc || out.H != oh || out.W != ow {
		panic(fmt.Sprintf("nn: qconv output shape %dx%dx%d != %dx%dx%d", out.C, out.H, out.W, oc, oh, ow))
	}
	if c.gemmOK(oh, ow) {
		kernelDispatch.gemm.Add(1)
		c.forwardGEMM(in, out, oh, ow)
		return
	}
	kernelDispatch.direct.Add(1)
	oxLo, oxHi := c.interior(in.W, ow)
	swar := c.Stride == 1 && oxHi-oxLo >= 8
	if swar {
		c.packInput(in)
	}
	if parallel.Workers() <= 1 {
		if n := oxHi - oxLo; cap(c.scratch) < n {
			//sovlint:ignore hotalloc first-call scratch growth; warm passes reuse the accumulator row
			c.scratch = make([]int32, n)
		}
		for o := 0; o < oc; o++ {
			c.forwardChannel(in, out, o, oh, ow, swar, c.scratch)
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(oc, 1, func(o0, o1 int) {
		oxLo, oxHi := c.interior(in.W, ow)
		acc := parallel.GetI32(oxHi - oxLo)
		for o := o0; o < o1; o++ {
			c.forwardChannel(in, out, o, oh, ow, swar, acc)
		}
		parallel.PutI32(acc)
	})
}

// interior returns the [oxLo, oxHi) output-column range whose full K-wide
// window fits horizontally inside the input.
func (c *QConv2D) interior(inW, ow int) (oxLo, oxHi int) {
	oxLo = ceilDiv(c.Pad, c.Stride)
	oxHi = (inW-c.K+c.Pad)/c.Stride + 1
	if oxLo > ow {
		oxLo = ow
	}
	if oxHi > ow {
		oxHi = ow
	}
	if oxHi < oxLo {
		oxHi = oxLo
	}
	return oxLo, oxHi
}

// forwardChannel computes one output channel of the fused convolution.
// Interior output rows run eight pixels at a time through the SWAR chunk
// kernel when the stride is 1 (swar is set by the caller after packing the
// biased byte buffer); the ≤7 leftover columns — and every row when SWAR is
// off — accumulate tap-major: each weight is hoisted into a register once
// and swept across an int32 accumulator row (borrowed from the parallel
// pools), so the hot loop is a branch-free widening multiply-add with no
// per-pixel slicing. Integer addition is exact and associative, so neither
// reordering can perturb results.
//
//sov:hotpath
func (c *QConv2D) forwardChannel(in, out *QTensor, o, oh, ow int, swar bool, scratch []int32) {
	per := c.InC * c.K * c.K
	wBase := o * per
	fold := c.foldedBias[o]
	rq := c.rq
	oxLo, oxHi := c.interior(in.W, ow)
	n := oxHi - oxLo
	nC := 0
	if swar {
		nC = n &^ 7
	}
	acc := scratch[:n-nC]
	k3s1 := c.K == 3 && c.Stride == 1
	for oy := 0; oy < oh; oy++ {
		iy0 := oy*c.Stride - c.Pad
		rowFull := iy0 >= 0 && iy0+c.K <= in.H
		outRow := out.Data[(o*oh+oy)*ow : (o*oh+oy+1)*ow]
		if !rowFull {
			for ox := 0; ox < ow; ox++ {
				outRow[ox] = rq.apply(c.accEdge(in, wBase, iy0, ox*c.Stride-c.Pad))
			}
			continue
		}
		for ox := 0; ox < oxLo; ox++ {
			outRow[ox] = rq.apply(c.accEdge(in, wBase, iy0, ox*c.Stride-c.Pad))
		}
		for j0 := 0; j0 < nC; j0 += 8 {
			c.swarChunk(in.H, in.W, iy0, oxLo+j0-c.Pad, o, outRow[oxLo+j0:oxLo+j0+8])
		}
		if len(acc) > 0 {
			for j := range acc {
				acc[j] = fold
			}
			ix0 := (oxLo+nC)*c.Stride - c.Pad
			for ic := 0; ic < c.InC; ic++ {
				wc := wBase + ic*c.K*c.K
				chanBase := (ic*in.H+iy0)*in.W + ix0
				for ky := 0; ky < c.K; ky++ {
					rowBase := chanBase + ky*in.W
					if k3s1 {
						w0 := int32(c.Weights[wc+ky*3])
						w1 := int32(c.Weights[wc+ky*3+1])
						w2 := int32(c.Weights[wc+ky*3+2])
						r := in.Data[rowBase : rowBase+len(acc)+2]
						for j, a := range acc {
							acc[j] = a + w0*int32(r[j]) + w1*int32(r[j+1]) + w2*int32(r[j+2])
						}
						continue
					}
					for kx := 0; kx < c.K; kx++ {
						w := int32(c.Weights[wc+ky*c.K+kx])
						if w == 0 {
							continue
						}
						r := in.Data[rowBase+kx:]
						for j := range acc {
							acc[j] += w * int32(r[j*c.Stride])
						}
					}
				}
			}
			for j, a := range acc {
				outRow[oxLo+nC+j] = rq.apply(a)
			}
		}
		for ox := oxHi; ox < ow; ox++ {
			outRow[ox] = rq.apply(c.accEdge(in, wBase, iy0, ox*c.Stride-c.Pad))
		}
	}
}

// swarChunk accumulates eight consecutive interior output pixels in SWAR
// 16-bit lanes. Each tap issues one 8-byte load of biased activations,
// splits it into even/odd 16-bit lanes, and multiply-accumulates the
// unsigned weight magnitude into positive- or negative-weight lane words;
// a running weight budget spills the lanes to int32 before Σ|w|·255 can
// exceed a 16-bit lane. The biased-domain total folds back through
// swarFold = foldedBias − 128·Σw, so the result is bit-exact with the
// tap-major accumulation.
//
//sov:hotpath
func (c *QConv2D) swarChunk(inH, inW, iy0, ix0, o int, outChunk []int8) {
	ub := c.ubuf
	per := c.K * c.K
	wBase := o * c.InC * per
	var acc [8]int32
	var pe, po, ne, no uint64
	var budP, budN int32
	for ic := 0; ic < c.InC; ic++ {
		wc := wBase + ic*per
		chanBase := (ic*inH+iy0)*inW + ix0
		for ky := 0; ky < c.K; ky++ {
			rowBase := chanBase + ky*inW
			wRow := wc + ky*c.K
			for kx := 0; kx < c.K; kx++ {
				w := int32(c.Weights[wRow+kx])
				if w == 0 {
					continue
				}
				v := load8(ub, rowBase+kx)
				even := v & swarEvenBytes
				odd := (v >> 8) & swarEvenBytes
				if w > 0 {
					if budP += w * 255; budP > 0xFFFF {
						spillLanes16(&acc, pe, po, 1)
						pe, po = 0, 0
						budP = w * 255
					}
					u := uint64(w)
					pe += even * u
					po += odd * u
				} else {
					w = -w
					if budN += w * 255; budN > 0xFFFF {
						spillLanes16(&acc, ne, no, -1)
						ne, no = 0, 0
						budN = w * 255
					}
					u := uint64(w)
					ne += even * u
					no += odd * u
				}
			}
		}
	}
	spillLanes16(&acc, pe, po, 1)
	spillLanes16(&acc, ne, no, -1)
	fold := c.swarFold[o]
	rq := c.rq
	for i, a := range &acc {
		outChunk[i] = rq.apply(fold + a)
	}
}

// accEdge accumulates one output pixel whose window is clipped by the
// image border: only valid taps contribute, each with the exact per-tap
// zero-point subtraction (clipped taps see real 0, which is the zero point
// itself, so they contribute nothing — identical semantics to the float
// kernel's implicit zero padding).
//
//sov:hotpath
func (c *QConv2D) accEdge(in *QTensor, wBase, iy0, ix0 int) int32 {
	ky0, ky1 := 0, c.K
	if iy0 < 0 {
		ky0 = -iy0
	}
	if iy0+c.K > in.H {
		ky1 = in.H - iy0
	}
	kx0, kx1 := 0, c.K
	if ix0 < 0 {
		kx0 = -ix0
	}
	if ix0+c.K > in.W {
		kx1 = in.W - ix0
	}
	sum := c.Bias[wBase/(c.InC*c.K*c.K)]
	zero := c.zeroIn
	for ic := 0; ic < c.InC; ic++ {
		wc := wBase + ic*c.K*c.K
		chanBase := ic * in.H * in.W
		for ky := ky0; ky < ky1; ky++ {
			rowBase := chanBase + (iy0+ky)*in.W + ix0
			wRow := wc + ky*c.K
			for kx := kx0; kx < kx1; kx++ {
				sum += int32(c.Weights[wRow+kx]) * (int32(in.Data[rowBase+kx]) - zero)
			}
		}
	}
	return sum
}

// QMaxPool2 is the 2×2 stride-2 max pool over int8 codes. Quantization is
// monotonic, so pooling codes equals pooling real values; parameters pass
// through unchanged and the kernel is exact.
type QMaxPool2 struct {
	P QuantParams
}

// Name implements QLayer.
func (QMaxPool2) Name() string { return "qmaxpool2" }

// OutShape implements QLayer.
func (QMaxPool2) OutShape(c, h, w int) (int, int, int) { return c, h / 2, w / 2 }

// OutParams implements QLayer.
func (p QMaxPool2) OutParams() QuantParams { return p.P }

// ForwardInto implements QLayer.
//
//sov:hotpath
func (p QMaxPool2) ForwardInto(in, out *QTensor) {
	if out.C != in.C || out.H != in.H/2 || out.W != in.W/2 {
		panic(fmt.Sprintf("nn: qpool output shape %dx%dx%d != %dx%dx%d", out.C, out.H, out.W, in.C, in.H/2, in.W/2))
	}
	if parallel.Workers() <= 1 {
		for c := 0; c < in.C; c++ {
			qpoolChannel(in, out, c)
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(in.C, 1, func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			qpoolChannel(in, out, c)
		}
	})
}

// qpoolChannel max-pools one channel of int8 codes.
//
//sov:hotpath
func qpoolChannel(in, out *QTensor, c int) {
	for y := 0; y < out.H; y++ {
		top := in.Data[(c*in.H+2*y)*in.W : (c*in.H+2*y+1)*in.W]
		bot := in.Data[(c*in.H+2*y+1)*in.W : (c*in.H+2*y+2)*in.W]
		outRow := out.Data[(c*out.H+y)*out.W : (c*out.H+y+1)*out.W]
		for x := 0; x < out.W; x++ {
			m := top[2*x]
			if v := top[2*x+1]; v > m {
				m = v
			}
			if v := bot[2*x]; v > m {
				m = v
			}
			if v := bot[2*x+1]; v > m {
				m = v
			}
			outRow[x] = m
		}
	}
}

// QGlobalAvgPool averages each channel in the integer domain (rounded
// division by the pixel count); parameters pass through unchanged.
type QGlobalAvgPool struct {
	P QuantParams
}

// Name implements QLayer.
func (QGlobalAvgPool) Name() string { return "qgap" }

// OutShape implements QLayer.
func (QGlobalAvgPool) OutShape(c, _, _ int) (int, int, int) { return c, 1, 1 }

// OutParams implements QLayer.
func (p QGlobalAvgPool) OutParams() QuantParams { return p.P }

// ForwardInto implements QLayer.
//
//sov:hotpath
func (p QGlobalAvgPool) ForwardInto(in, out *QTensor) {
	if out.C != in.C || out.H != 1 || out.W != 1 {
		panic(fmt.Sprintf("nn: qgap output shape %dx%dx%d != %dx1x1", out.C, out.H, out.W, in.C))
	}
	n := int32(in.H * in.W)
	if parallel.Workers() <= 1 {
		for c := 0; c < in.C; c++ {
			out.Data[c] = qgapChannel(in, c, n)
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(in.C, 4, func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			out.Data[c] = qgapChannel(in, c, n)
		}
	})
}

// qgapChannel sums one channel and divides with round-half-away-from-zero.
//
//sov:hotpath
func qgapChannel(in *QTensor, c int, n int32) int8 {
	var sum int32
	for _, v := range in.Data[c*in.H*in.W : (c+1)*in.H*in.W] {
		sum += int32(v)
	}
	if sum >= 0 {
		return satInt8((2*sum + n) / (2 * n))
	}
	return satInt8(-((2*(-sum) + n) / (2 * n)))
}

// QFC is the fused int8 fully-connected layer: dot product + bias + ReLU +
// requantize, with the zero-point folded into the bias (every input element
// is always valid, so the fold is exact everywhere). The dot products run as
// SWAR pair-dots (swar.go): two MACs per 64-bit multiply against weight rows
// packed once at construction.
type QFC struct {
	In, Out    int
	Weights    []int8
	foldedBias []int32
	InP, OutP  QuantParams
	WScale     float32
	ReLU       bool
	rq         requant
	// wpack holds each weight row as np reversed biased pair words; rowConst
	// folds the bias and the constant terms of the pair-dot identity, so the
	// kernel only subtracts 128·Σu at the end.
	np       int
	wpack    []uint64
	rowConst []int64
	// xpack holds the serial path's packed input pairs (grown on first use,
	// reused forever); parallel callers borrow theirs from the pools.
	xpack []uint64
}

// NewQFC quantizes a float FC layer for the given activation quantizations.
func NewQFC(f *FC, in, out QuantParams) *QFC {
	w, ws := quantizeWeights(f.Weights)
	q := &QFC{In: f.In, Out: f.Out, Weights: w, InP: in, OutP: out, WScale: ws, ReLU: f.ReLU}
	accScale := in.Scale * ws
	bias := quantizeBias(f.Bias, accScale)
	q.foldedBias = make([]int32, f.Out)
	q.np = swarPairs(f.In)
	q.wpack = make([]uint64, f.Out*q.np)
	q.rowConst = make([]int64, f.Out)
	for o := 0; o < f.Out; o++ {
		row := w[o*f.In : (o+1)*f.In]
		var wsum int32
		for _, v := range row {
			wsum += int32(v)
		}
		q.foldedBias[o] = bias[o] - in.Zero*wsum
		wsumB := packWeightPairsInto(q.wpack[o*q.np:(o+1)*q.np], row)
		q.rowConst[o] = swarRowConst(q.foldedBias[o], wsumB, q.np)
	}
	q.rq = newRequant(float64(accScale)/float64(out.Scale), out.Zero, f.ReLU)
	return q
}

// Name implements QLayer.
func (f *QFC) Name() string { return fmt.Sprintf("qfc/%d->%d", f.In, f.Out) }

// OutShape implements QLayer.
func (f *QFC) OutShape(_, _, _ int) (int, int, int) { return f.Out, 1, 1 }

// OutParams implements QLayer.
func (f *QFC) OutParams() QuantParams { return f.OutP }

// ForwardInto implements QLayer. The int8 input row is packed into SWAR
// pair words once, then output rows are computed four at a time so every
// packed load feeds four weight rows and each 64-bit multiply retires two
// MACs. Output rows are independent integer dot products — exact for any
// worker count.
//
//sov:hotpath
func (f *QFC) ForwardInto(in, out *QTensor) {
	if len(in.Data) != f.In {
		panic(fmt.Sprintf("nn: qfc input %d != %d", len(in.Data), f.In))
	}
	if len(out.Data) != f.Out {
		panic(fmt.Sprintf("nn: qfc output %d != %d", len(out.Data), f.Out))
	}
	quads := f.Out / 4
	if parallel.Workers() <= 1 {
		if cap(f.xpack) < f.np {
			//sovlint:ignore hotalloc first-call scratch growth; warm passes reuse the packed input row
			f.xpack = make([]uint64, f.np)
		}
		xp := f.xpack[:f.np]
		sumU := packPairsInto(xp, in.Data)
		for q := 0; q < quads; q++ {
			f.swarRowQuad(xp, sumU, 4*q, out.Data)
		}
		f.swarTail(xp, sumU, 4*quads, out.Data)
		return
	}
	xp := parallel.GetU64(f.np)
	sumU := packPairsInto(xp, in.Data)
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(quads, 4, func(q0, q1 int) {
		for q := q0; q < q1; q++ {
			f.swarRowQuad(xp, sumU, 4*q, out.Data)
		}
	})
	f.swarTail(xp, sumU, 4*quads, out.Data)
	parallel.PutU64(xp)
}

// swarTail finishes the ≤3 output rows left over by the quad sweep.
//
//sov:hotpath
func (f *QFC) swarTail(xp []uint64, sumU int64, o int, dst []int8) {
	for ; o < f.Out; o++ {
		dst[o] = f.swarRow(xp, sumU, o)
	}
}

// swarRowQuad computes four fused output elements against the packed input
// row: each packed load feeds four weight rows and every multiply retires
// two MACs via the pair-dot identity (swar.go), so both the load traffic and
// the multiply count per MAC halve relative to the widened-int32 sweep.
//
//sov:hotpath
func (f *QFC) swarRowQuad(xp []uint64, sumU int64, o int, dst []int8) {
	np := f.np
	r0 := f.wpack[o*np : (o+1)*np]
	r1 := f.wpack[(o+1)*np : (o+2)*np]
	r2 := f.wpack[(o+2)*np : (o+3)*np]
	r3 := f.wpack[(o+3)*np : (o+4)*np]
	xp = xp[:len(r0)]
	r1 = r1[:len(r0)]
	r2 = r2[:len(r0)]
	r3 = r3[:len(r0)]
	var a, b, c, d uint64
	for i, x := range xp {
		a += (x * r0[i]) >> 32
		b += (x * r1[i]) >> 32
		c += (x * r2[i]) >> 32
		d += (x * r3[i]) >> 32
	}
	base := -128 * sumU
	dst[o] = f.rq.apply(int32(f.rowConst[o] + base + int64(a)))
	dst[o+1] = f.rq.apply(int32(f.rowConst[o+1] + base + int64(b)))
	dst[o+2] = f.rq.apply(int32(f.rowConst[o+2] + base + int64(c)))
	dst[o+3] = f.rq.apply(int32(f.rowConst[o+3] + base + int64(d)))
}

// swarRow computes one fused output element by pair-dot (the ≤3 trailing
// rows of the quad sweep).
//
//sov:hotpath
func (f *QFC) swarRow(xp []uint64, sumU int64, o int) int8 {
	row := f.wpack[o*f.np : (o+1)*f.np]
	xp = xp[:len(row)]
	var a uint64
	for i, x := range xp {
		a += (x * row[i]) >> 32
	}
	return f.rq.apply(int32(f.rowConst[o] - 128*sumU + int64(a)))
}

// QNetwork is an ordered stack of quantized layers with the input tensor's
// quantization.
type QNetwork struct {
	Layers   []QLayer
	InParams QuantParams
}

// ForwardPooled runs the stack with every intermediate activation borrowed
// from the quantized tensor pools; a warm steady state allocates nothing.
// The returned tensor is pooled — release it with PutQTensor (unless it is
// the input itself, returned unchanged for an empty stack).
func (n *QNetwork) ForwardPooled(in *QTensor) *QTensor {
	cur := in
	for _, l := range n.Layers {
		c, h, w := l.OutShape(cur.C, cur.H, cur.W)
		out := GetQTensor(c, h, w, l.OutParams())
		l.ForwardInto(cur, out)
		if cur != in {
			PutQTensor(cur)
		}
		cur = out
	}
	return cur
}

// OutParams returns the quantization of the network's output tensor.
func (n *QNetwork) OutParams() QuantParams {
	if len(n.Layers) == 0 {
		return n.InParams
	}
	return n.Layers[len(n.Layers)-1].OutParams()
}

// QuantizeNetwork converts a float network into a fused int8 network.
// calib is a representative input: each activation's quantization is fitted
// to its observed range on the calibration pass (weights quantize
// symmetrically per tensor; biases land in the int32 accumulator domain).
// The float network is left untouched.
func QuantizeNetwork(net *Network, calib *Tensor) *QNetwork {
	qn := &QNetwork{}
	lo, hi := tensorRange(calib)
	cur := ChooseQuantParams(lo, hi)
	qn.InParams = cur
	act := calib
	for _, l := range net.Layers {
		out := l.Forward(act)
		switch t := l.(type) {
		case *Conv2D:
			olo, ohi := tensorRange(out)
			op := ChooseQuantParams(olo, ohi)
			qn.Layers = append(qn.Layers, NewQConv2D(t, cur, op))
			cur = op
		case *FC:
			olo, ohi := tensorRange(out)
			op := ChooseQuantParams(olo, ohi)
			qn.Layers = append(qn.Layers, NewQFC(t, cur, op))
			cur = op
		case MaxPool2:
			qn.Layers = append(qn.Layers, QMaxPool2{P: cur})
		case GlobalAvgPool:
			qn.Layers = append(qn.Layers, QGlobalAvgPool{P: cur})
		default:
			panic("nn: cannot quantize layer " + l.Name())
		}
		act = out
	}
	return qn
}
