package nn

import (
	"math"
	"math/rand"
	"testing"
)

// calibInput builds a deterministic image-like input in [0,1].
func calibInput(c, h, w int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := NewTensor(c, h, w)
	for i := range t.Data {
		t.Data[i] = rng.Float32()
	}
	return t
}

func TestQuantParamsRoundTrip(t *testing.T) {
	p := ChooseQuantParams(-0.8, 1.6)
	if got := p.Dequantize(p.Quantize(0)); got != 0 {
		t.Fatalf("zero does not survive the round trip: %g", got)
	}
	for _, v := range []float32{-0.8, -0.3, 0, 0.41, 1.6} {
		q := p.Quantize(v)
		back := p.Dequantize(q)
		if d := math.Abs(float64(back - v)); d > float64(p.Scale)/2+1e-6 {
			t.Fatalf("round trip of %g -> %d -> %g off by %g (> scale/2 = %g)", v, q, back, d, p.Scale/2)
		}
	}
}

func TestRequantMatchesFloatScaling(t *testing.T) {
	for _, m := range []float64{0.9, 0.125, 0.003, 1.7} {
		rq := newRequant(m, 3, false)
		for acc := int32(-5000); acc <= 5000; acc += 7 {
			want := int32(math.Round(float64(acc)*m)) + 3
			if want > 127 {
				want = 127
			}
			if want < -128 {
				want = -128
			}
			got := int32(rq.apply(acc))
			// The 31-bit mantissa can land one code off exactly at .5
			// boundaries; anything further is a logic error.
			if d := got - want; d < -1 || d > 1 {
				t.Fatalf("requant(%d)×%g = %d, want %d", acc, m, got, want)
			}
		}
	}
}

// TestQConvMatchesFloatConv: the fused int8 convolution must track the float
// kernel within the quantization step of its output scale, at every output
// position (borders included — the zero-padding semantics must be exact).
func TestQConvMatchesFloatConv(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range []struct{ k, stride, pad int }{{3, 1, 1}, {1, 1, 0}, {3, 2, 1}} {
		conv := NewConv2D(4, 8, cfg.k, cfg.stride, cfg.pad, true, rng)
		in := calibInput(4, 20, 24, 7)
		ref := conv.Forward(in)

		inP := ChooseQuantParams(0, 1)
		lo, hi := tensorRange(ref)
		q := NewQConv2D(conv, inP, ChooseQuantParams(lo, hi))
		qin := NewQTensor(4, 20, 24, inP)
		QuantizeTensorInto(qin, in)
		qout := q.Forward(qin)

		// Quant noise: half an input LSB per tap propagated through the
		// kernel's weights, plus weight LSB and output rounding — 5 output
		// LSBs covers every kernel shape in use (DESIGN.md §8).
		budget := float64(q.OutP.Scale) * 5
		var worst float64
		for i := range ref.Data {
			d := math.Abs(float64(q.OutP.Dequantize(qout.Data[i]) - ref.Data[i]))
			if d > worst {
				worst = d
			}
		}
		if worst > budget {
			t.Errorf("k=%d s=%d p=%d: max |qconv - conv| = %g exceeds budget %g",
				cfg.k, cfg.stride, cfg.pad, worst, budget)
		}
	}
}

func TestQFCMatchesFloatFC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fc := NewFC(64, 16, true, rng)
	in := calibInput(64, 1, 1, 9)
	ref := fc.Forward(in)

	inP := ChooseQuantParams(0, 1)
	lo, hi := tensorRange(ref)
	q := NewQFC(fc, inP, ChooseQuantParams(lo, hi))
	qin := NewQTensor(64, 1, 1, inP)
	QuantizeTensorInto(qin, in)
	qout := NewQTensor(16, 1, 1, q.OutP)
	q.ForwardInto(qin, qout)

	budget := float64(q.OutP.Scale) * 3
	for i := range ref.Data {
		if d := math.Abs(float64(q.OutP.Dequantize(qout.Data[i]) - ref.Data[i])); d > budget {
			t.Errorf("fc[%d]: |q - float| = %g exceeds budget %g", i, d, budget)
		}
	}
}

// TestQuantizedNetworkTracksFloat runs the classifier trunk quantized
// end-to-end — no float round-trips between layers — and checks the final
// activations stay within the documented budget of the float stack.
func TestQuantizedNetworkTracksFloat(t *testing.T) {
	cl := NewClassifier(32, 32, 4, 42)
	calib := calibInput(1, 32, 32, 3)
	qn := QuantizeNetwork(cl.Net, calib)

	probe := calibInput(1, 32, 32, 77)
	ref := cl.Net.Forward(probe)

	qin := GetQTensor(1, 32, 32, qn.InParams)
	QuantizeTensorInto(qin, probe)
	qout := qn.ForwardPooled(qin)
	if qout != qin {
		defer PutQTensor(qin)
	}
	defer PutQTensor(qout)

	outP := qn.OutParams()
	// Accumulated over 6 layers; the documented end-to-end budget is 6
	// output LSBs (DESIGN.md §8).
	budget := float64(outP.Scale) * 6
	for i := range ref.Data {
		if d := math.Abs(float64(outP.Dequantize(qout.Data[i]) - ref.Data[i])); d > budget {
			t.Errorf("logit[%d]: |q - float| = %g exceeds budget %g", i, d, budget)
		}
	}
}

// TestQYOLOTracksFloatDecode: quantized inference must reproduce the float
// grid decode within the detection accuracy budget — objectness within 0.05
// absolute, box centers within half a grid cell.
func TestQYOLOTracksFloatDecode(t *testing.T) {
	y := NewTinyYOLO(48, 64, 3, 21)
	calib := calibInput(1, 48, 64, 13)
	qy := QuantizeYOLO(y, calib)

	probe := calibInput(1, 48, 64, 99)
	ref := y.Infer(probe)
	got := qy.Infer(probe)
	if len(ref) != len(got) {
		t.Fatalf("cell count %d != %d", len(got), len(ref))
	}
	cellW := 1 / float32(qy.GridW)
	cellH := 1 / float32(qy.GridH)
	for i := range ref {
		if d := math.Abs(float64(got[i].Objectness - ref[i].Objectness)); d > 0.05 {
			t.Fatalf("cell %d objectness off by %g", i, d)
		}
		if d := math.Abs(float64(got[i].CX - ref[i].CX)); d > float64(cellW)/2 {
			t.Fatalf("cell %d cx off by %g", i, d)
		}
		if d := math.Abs(float64(got[i].CY - ref[i].CY)); d > float64(cellH)/2 {
			t.Fatalf("cell %d cy off by %g", i, d)
		}
	}
}

// TestQuantForwardPooledZeroAlloc: a warm quantized forward pass must not
// allocate (the pooled-path contract the hotalloc analyzer guards).
func TestQuantForwardPooledZeroAlloc(t *testing.T) {
	cl := NewClassifier(32, 32, 4, 42)
	calib := calibInput(1, 32, 32, 3)
	qn := QuantizeNetwork(cl.Net, calib)
	probe := calibInput(1, 32, 32, 8)

	run := func() {
		qin := GetQTensor(1, 32, 32, qn.InParams)
		QuantizeTensorInto(qin, probe)
		qout := qn.ForwardPooled(qin)
		PutQTensor(qin)
		if qout != qin {
			PutQTensor(qout)
		}
	}
	run() // warm the pools
	if allocs := testing.AllocsPerRun(50, run); allocs > 0 {
		t.Fatalf("warm quantized forward pass allocates %.1f times per run, want 0", allocs)
	}
}
