package nn

import (
	"fmt"
	"math"
	"math/rand"

	"sov/internal/parallel"
)

// GlobalAvgPool collapses each channel to its mean, producing a Cx1x1
// tensor — the standard head between the conv trunk and a classifier.
type GlobalAvgPool struct{}

// Name implements Layer.
func (GlobalAvgPool) Name() string { return "gap" }

// OutShape implements Layer.
func (GlobalAvgPool) OutShape(c, _, _ int) (int, int, int) { return c, 1, 1 }

// FLOPs implements Layer.
func (GlobalAvgPool) FLOPs(c, h, w int) int64 { return int64(c) * int64(h) * int64(w) }

// Forward implements Layer.
func (GlobalAvgPool) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.C, 1, 1)
	n := float32(in.H * in.W)
	parallel.For(in.C, 4, func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			var s float32
			base := c * in.H * in.W
			for i := 0; i < in.H*in.W; i++ {
				s += in.Data[base+i]
			}
			out.Data[c] = s / n
		}
	})
	return out
}

// FC is a fully-connected layer over a flattened input.
type FC struct {
	In, Out int
	Weights []float32 // [Out][In]
	Bias    []float32
	ReLU    bool
}

// NewFC builds an FC layer with deterministic He-initialized weights.
func NewFC(in, out int, relu bool, rng *rand.Rand) *FC {
	f := &FC{In: in, Out: out, ReLU: relu}
	f.Weights = make([]float32, in*out)
	std := float32(math.Sqrt(2.0 / float64(in)))
	for i := range f.Weights {
		f.Weights[i] = float32(rng.NormFloat64()) * std
	}
	f.Bias = make([]float32, out)
	return f
}

// Name implements Layer.
func (f *FC) Name() string { return fmt.Sprintf("fc/%d->%d", f.In, f.Out) }

// OutShape implements Layer.
func (f *FC) OutShape(_, _, _ int) (int, int, int) { return f.Out, 1, 1 }

// FLOPs implements Layer.
func (f *FC) FLOPs(_, _, _ int) int64 { return int64(f.In) * int64(f.Out) * 2 }

// Forward implements Layer.
func (f *FC) Forward(in *Tensor) *Tensor {
	if in.Numel() != f.In {
		panic(fmt.Sprintf("nn: fc input %d != %d", in.Numel(), f.In))
	}
	out := NewTensor(f.Out, 1, 1)
	parallel.For(f.Out, 16, func(o0, o1 int) {
		for o := o0; o < o1; o++ {
			s := f.Bias[o]
			row := f.Weights[o*f.In : (o+1)*f.In]
			for i, v := range in.Data {
				s += row[i] * v
			}
			if f.ReLU && s < 0 {
				s = 0
			}
			out.Data[o] = s
		}
	})
	return out
}

// Softmax normalizes a logit vector in place and returns it.
func Softmax(x []float32) []float32 {
	if len(x) == 0 {
		return x
	}
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - max))
		x[i] = float32(e)
		sum += e
	}
	for i := range x {
		x[i] = float32(float64(x[i]) / sum)
	}
	return x
}

// Classifier is a small conv-trunk + GAP + FC network producing class
// probabilities for an image crop — the per-object classification stage
// that refines the detector's class output.
type Classifier struct {
	Net     *Network
	Classes int
	inH     int
	inW     int
}

// NewClassifier builds a deterministic classifier for crops of the given
// size.
func NewClassifier(inH, inW, classes int, seed int64) *Classifier {
	// Weight init draws from an explicit caller-provided seed (detrand:
	// never the global math/rand source), so a model is a pure function of
	// (architecture, seed).
	rng := rand.New(rand.NewSource(seed))
	net := &Network{Layers: []Layer{
		NewConv2D(1, 8, 3, 1, 1, true, rng),
		MaxPool2{},
		NewConv2D(8, 16, 3, 1, 1, true, rng),
		MaxPool2{},
		GlobalAvgPool{},
		NewFC(16, classes, false, rng),
	}}
	return &Classifier{Net: net, Classes: classes, inH: inH, inW: inW}
}

// Classify returns the class probabilities for a crop.
func (c *Classifier) Classify(crop *Tensor) []float32 {
	logits := c.Net.Forward(crop)
	out := make([]float32, c.Classes)
	copy(out, logits.Data)
	return Softmax(out)
}

// TotalFLOPs estimates one forward pass.
func (c *Classifier) TotalFLOPs() int64 {
	return c.Net.TotalFLOPs(1, c.inH, c.inW)
}
