package nn

// SWAR (SIMD Within A Register) substrate for the second-generation int8
// kernels (DESIGN.md §10). A uint64 holds eight 8-bit lanes or four 16-bit
// lanes; the kernels below this file (QFC, the QConv2D interior, the im2col
// GEMM micro-kernel) do their multiply-accumulate in packed sub-words and
// spill to int32/int64 before any lane can overflow. Everything is exact
// integer arithmetic — the SWAR paths produce bit-identical accumulators to
// the scalar paths they replace, which the package tests assert directly.
//
// Lane layout and the pair-dot identity
//
// Signed int8 codes are first rebased to the unsigned domain,
//
//	u = x + 128 ∈ [0, 255]   (byte: u = uint8(x) ^ 0x80)
//	w' = w + 128 ∈ [1, 255]  (weights are symmetric, |w| ≤ 127)
//
// so lane products never need sign extension. A dot product rebuilds from
// the unsigned one by the exact correction
//
//	Σ w·x = Σ u·w' − 128·Σu − 128·Σw' + 16384·n                      (pair-dot)
//
// over n padded elements; a padding element with u = 0, w' = 128 contributes
// 0·128 − 0 − 128·128 + 16384 = 0, so odd lengths pad for free.
//
// The pair-dot kernel packs two consecutive activations into the 32-bit
// halves of a word, A = u₀ | u₁<<32, and the matching weights *reversed*,
// B = w'₁ | w'₀<<32. Then in the 64-bit product
//
//	A·B = u₀w'₁ + (u₀w'₀ + u₁w'₁)<<32 + u₁w'₀<<64 (mod 2⁶⁴)
//
// the low half u₀w'₁ ≤ 255·255 = 65025 < 2³² cannot carry into the middle,
// the middle sum ≤ 130050 < 2³² cannot carry into the (discarded) top, so
// (A·B)>>32 extracts u₀w'₀ + u₁w'₁ exactly: two MACs per multiply.

import "encoding/binary"

const (
	// swarSignFlip XORs int8 bytes into the biased unsigned domain u = x+128.
	swarSignFlip = 0x8080808080808080
	// swarEvenBytes selects the even byte lanes of a word as 16-bit lanes.
	swarEvenBytes = 0x00FF00FF00FF00FF
	// swarOnes16 replicates a 16-bit lane across the word (horizontal sums).
	swarOnes16 = 0x0001000100010001
	// swarPadU and swarPadW are the padding lane values of the pair-dot
	// identity: an (u, w') = (0, 128) element contributes exactly zero.
	swarPadU = 0
	swarPadW = 128
)

// swarPairs returns the packed pair count for an n-element dot product.
func swarPairs(n int) int { return (n + 1) / 2 }

// packPairsInto packs src (int8 codes) into biased activation pair words
// dst[j] = u₂ⱼ | u₂ⱼ₊₁<<32 and returns Σu. dst must have swarPairs(len(src))
// elements; an odd tail pads with u = 0.
//
//sov:hotpath
func packPairsInto(dst []uint64, src []int8) int64 {
	var sum int64
	i, j := 0, 0
	for ; i+2 <= len(src); i, j = i+2, j+1 {
		a := uint64(uint8(src[i]) ^ 0x80)
		b := uint64(uint8(src[i+1]) ^ 0x80)
		dst[j] = a | b<<32
		sum += int64(a + b)
	}
	if i < len(src) {
		a := uint64(uint8(src[i]) ^ 0x80)
		dst[j] = a | swarPadU<<32
		sum += int64(a)
	}
	return sum
}

// packWeightPairsInto packs one weight row into reversed biased pair words
// dst[j] = w'₂ⱼ₊₁ | w'₂ⱼ<<32 (the pair-dot operand order) and returns Σw'
// over the padded row. dst must have swarPairs(len(row)) elements.
func packWeightPairsInto(dst []uint64, row []int8) int64 {
	var sum int64
	i, j := 0, 0
	for ; i+2 <= len(row); i, j = i+2, j+1 {
		a := uint64(uint8(row[i]) ^ 0x80)
		b := uint64(uint8(row[i+1]) ^ 0x80)
		dst[j] = b | a<<32
		sum += int64(a + b)
	}
	if i < len(row) {
		a := uint64(uint8(row[i]) ^ 0x80)
		dst[j] = swarPadW | a<<32
		sum += int64(a) + swarPadW
	}
	return sum
}

// swarRowConst folds everything constant about one weight row of the
// pair-dot identity: bias (with the input zero point already folded in),
// −128·Σw', and +16384·n over the padded length. The kernel then computes
// acc = rowConst + Σ(u·w') − 128·Σu.
func swarRowConst(foldedBias int32, wsumBiased int64, pairs int) int64 {
	return int64(foldedBias) - 128*wsumBiased + 16384*int64(2*pairs)
}

// packBiasedBytesInto rewrites src's int8 codes as biased bytes u = x+128.
// The convolution kernels read these through 8-byte loads; dst aliases a
// whole activation tensor, packed once per forward pass.
//
//sov:hotpath
func packBiasedBytesInto(dst []byte, src []int8) {
	for i, v := range src {
		dst[i] = uint8(v) ^ 0x80
	}
}

// load8 reads eight consecutive biased bytes as one little-endian word, so
// byte k lands in 8-bit lane k regardless of host endianness.
//
//sov:hotpath
func load8(b []byte, off int) uint64 {
	return binary.LittleEndian.Uint64(b[off : off+8 : off+8])
}

// spillLanes16 drains four 16-bit lane accumulators from each of the
// even/odd lane words into eight int32 accumulators (pixel order: even word
// lane k is pixel 2k, odd word lane k is pixel 2k+1). sign selects add (+1)
// or subtract (−1) — the convolution interior keeps separate positive- and
// negative-weight accumulators so lanes stay unsigned.
//
//sov:hotpath
func spillLanes16(acc *[8]int32, even, odd uint64, sign int32) {
	acc[0] += sign * int32(even&0xFFFF)
	acc[2] += sign * int32((even>>16)&0xFFFF)
	acc[4] += sign * int32((even>>32)&0xFFFF)
	acc[6] += sign * int32(even>>48)
	acc[1] += sign * int32(odd&0xFFFF)
	acc[3] += sign * int32((odd>>16)&0xFFFF)
	acc[5] += sign * int32((odd>>32)&0xFFFF)
	acc[7] += sign * int32(odd>>48)
}
