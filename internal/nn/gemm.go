package nn

import "sov/internal/parallel"

// im2col + register-blocked integer GEMM backend for QConv2D (DESIGN.md
// §10). The convolution reshapes into C[OutC × P] = W[OutC × kd] · A[kd × P]
// with kd = InC·K·K and P = OH·OW output pixels. Weight panels (B) pack once
// at construction into reversed biased pair words (swar.go); activation
// panels (A) pack per column block into pooled scratch, with the input's
// zero-point code standing in for out-of-bounds taps so border columns are
// bit-exact with the direct path's edge handling. The 4×4 micro-kernel keeps
// sixteen pair-dot accumulators live across the shared kd sweep: every A
// load feeds four weight rows, every B load four pixels, and every 64-bit
// multiply retires two MACs.
//
// The direct tap-major path stays the better kernel when the dot product is
// short (pack overhead dominates) or the output plane is tiny (panels don't
// amortize); gemmEligible gates construction and gemmOK dispatches per call.

const (
	// gemmMinDot is the dispatcher's im2col depth floor: below kd = InC·K·K
	// of ~3 input channels of a 3×3 kernel, packing every activation into
	// pair words costs more than the direct SWAR interior saves.
	gemmMinDot = 48
	// gemmMinPixels is the dispatcher's output-plane floor: tiny grids (the
	// 1×1 detection head's 7×9 cells) re-pack weights' worth of A panel per
	// handful of outputs and lose to the direct path.
	gemmMinPixels = 128
	// gemmColBlock is the im2col column-block width (output pixels per A
	// panel). Chosen by the cachesim sweep in tiles_test.go: the block's
	// pair words (np·8·gemmColBlock bytes) plus the full B panel set must
	// stay cache-resident together — then the B panels survive from block
	// to block and only the A gather misses. On the perception-shaped GEMM
	// stream the sweep's miss-rate optimum sits at 32 columns (18 KB of A
	// panel + 18 KB of B); wall-clock is flat from 32 to 128 on the
	// ALU-bound kernel, so the traffic optimum ships (DESIGN.md §10).
	gemmColBlock = 32
)

// gemmState is QConv2D's GEMM backend: construction-time weight panels plus
// the serial path's reusable im2col scratch.
type gemmState struct {
	np   int      // pair words per kd-length dot product
	mpad int      // OutC rounded up to the 4-row panel height
	b    []uint64 // packed B panels, [mpad/4] panels of [np][4] words
	rowC []int64  // per-channel pair-dot constant (swarRowConst)
	abuf []uint64 // serial A-panel scratch (grown on first use)
	sbuf []int32  // serial Σu scratch (grown on first use)
}

// gemmEligible reports whether the layer shape ever dispatches to GEMM.
func (c *QConv2D) gemmEligible() bool {
	return c.InC*c.K*c.K >= gemmMinDot
}

// gemmOK is the per-call dispatcher: the backend must be built and the
// output plane large enough to amortize the A-panel packing.
func (c *QConv2D) gemmOK(oh, ow int) bool {
	return c.gemm.b != nil && oh*ow >= gemmMinPixels
}

// initGEMM packs the weight panels. Row panels hold four output channels at
// word stride 4 — the micro-kernel streams one panel per j step; channels
// past OutC pad with zero words whose products land in discarded
// accumulators.
func (c *QConv2D) initGEMM() {
	if !c.gemmEligible() {
		return
	}
	kd := c.InC * c.K * c.K
	np := swarPairs(kd)
	mpad := (c.OutC + 3) &^ 3
	c.gemm.np = np
	c.gemm.mpad = mpad
	c.gemm.b = make([]uint64, mpad*np)
	c.gemm.rowC = make([]int64, c.OutC)
	for o := 0; o < c.OutC; o++ {
		row := c.Weights[o*kd : (o+1)*kd]
		panel := c.gemm.b[(o/4)*np*4:]
		r := o % 4
		var wsumB int64
		for j := 0; j < np; j++ {
			a := uint64(uint8(row[2*j]) ^ 0x80)
			b := uint64(swarPadW)
			if 2*j+1 < kd {
				b = uint64(uint8(row[2*j+1]) ^ 0x80)
			}
			panel[j*4+r] = b | a<<32
			wsumB += int64(a + b)
		}
		c.gemm.rowC[o] = swarRowConst(c.foldedBias[o], wsumB, np)
	}
}

// forwardGEMM runs the convolution as a blocked integer GEMM. Column blocks
// are independent (each owns its output columns across every channel), so
// they fan out across the worker pool; the integer arithmetic is exact, so
// the output is byte-identical to the direct path and to any worker count.
//
//sov:hotpath
func (c *QConv2D) forwardGEMM(in, out *QTensor, oh, ow int) {
	c.packInput(in)
	p := oh * ow
	nblk := ceilDiv(p, gemmColBlock)
	apn := c.gemm.np * gemmColBlock
	if parallel.Workers() <= 1 {
		if cap(c.gemm.abuf) < apn {
			//sovlint:ignore hotalloc first-call scratch growth; warm passes reuse the A panel
			c.gemm.abuf = make([]uint64, apn)
		}
		if cap(c.gemm.sbuf) < gemmColBlock {
			//sovlint:ignore hotalloc first-call scratch growth; warm passes reuse the column-sum row
			c.gemm.sbuf = make([]int32, gemmColBlock)
		}
		for blk := 0; blk < nblk; blk++ {
			c.gemmBlock(out, in.H, in.W, ow, p, blk*gemmColBlock, c.gemm.abuf[:apn], c.gemm.sbuf[:gemmColBlock])
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(nblk, 1, func(b0, b1 int) {
		ap := parallel.GetU64(apn)
		su := parallel.GetI32(gemmColBlock)
		for blk := b0; blk < b1; blk++ {
			c.gemmBlock(out, in.H, in.W, ow, p, blk*gemmColBlock, ap, su)
		}
		parallel.PutI32(su)
		parallel.PutU64(ap)
	})
}

// gemmBlock packs one im2col column block and multiplies it against every
// weight panel, requantizing straight into the output tensor.
//
//sov:hotpath
func (c *QConv2D) gemmBlock(out *QTensor, inH, inW, ow, p, colBase int, ap []uint64, su []int32) {
	cols := gemmColBlock
	if colBase+cols > p {
		cols = p - colBase
	}
	groups := (cols + 3) / 4
	np := c.gemm.np
	upad := uint8(int8(c.zeroIn)) ^ 0x80
	for g := 0; g < groups; g++ {
		panel := ap[g*np*4 : (g+1)*np*4]
		for ci := 0; ci < 4; ci++ {
			col := colBase + g*4 + ci
			if col >= p {
				// Phantom columns of the last group: all-zero pair words
				// multiply to nothing and are never written back.
				for j := 0; j < np; j++ {
					panel[j*4+ci] = 0
				}
				su[g*4+ci] = 0
				continue
			}
			su[g*4+ci] = c.packACol(panel, ci, col, ow, inH, inW, upad)
		}
	}
	rq := c.rq
	for rb := 0; rb < c.gemm.mpad/4; rb++ {
		bp := c.gemm.b[rb*np*4 : (rb+1)*np*4]
		for g := 0; g < groups; g++ {
			a := ap[g*np*4 : (g+1)*np*4]
			var s00, s01, s02, s03 uint64
			var s10, s11, s12, s13 uint64
			var s20, s21, s22, s23 uint64
			var s30, s31, s32, s33 uint64
			for j := 0; j < np; j++ {
				x0 := a[j*4]
				x1 := a[j*4+1]
				x2 := a[j*4+2]
				x3 := a[j*4+3]
				b0 := bp[j*4]
				b1 := bp[j*4+1]
				b2 := bp[j*4+2]
				b3 := bp[j*4+3]
				s00 += (x0 * b0) >> 32
				s01 += (x1 * b0) >> 32
				s02 += (x2 * b0) >> 32
				s03 += (x3 * b0) >> 32
				s10 += (x0 * b1) >> 32
				s11 += (x1 * b1) >> 32
				s12 += (x2 * b1) >> 32
				s13 += (x3 * b1) >> 32
				s20 += (x0 * b2) >> 32
				s21 += (x1 * b2) >> 32
				s22 += (x2 * b2) >> 32
				s23 += (x3 * b2) >> 32
				s30 += (x0 * b3) >> 32
				s31 += (x1 * b3) >> 32
				s32 += (x2 * b3) >> 32
				s33 += (x3 * b3) >> 32
			}
			sums := [16]uint64{
				s00, s01, s02, s03,
				s10, s11, s12, s13,
				s20, s21, s22, s23,
				s30, s31, s32, s33,
			}
			for r := 0; r < 4; r++ {
				o := rb*4 + r
				if o >= c.OutC {
					break
				}
				rc := c.gemm.rowC[o]
				obase := o * p
				for ci := 0; ci < 4; ci++ {
					col := colBase + g*4 + ci
					if col >= colBase+cols {
						break
					}
					out.Data[obase+col] = rq.apply(int32(rc - 128*int64(su[g*4+ci]) + int64(sums[r*4+ci])))
				}
			}
		}
	}
}

// packACol gathers one output pixel's kd-length im2col column into pair
// words at panel word offset ci (stride 4) and returns its Σu. Taps outside
// the input read the zero-point code — exactly the zero padding the direct
// path's border handling computes.
//
//sov:hotpath
func (c *QConv2D) packACol(panel []uint64, ci, col, ow, inH, inW int, upad uint8) int32 {
	ub := c.ubuf
	oy, ox := col/ow, col%ow
	iy0 := oy*c.Stride - c.Pad
	ix0 := ox*c.Stride - c.Pad
	var sum int32
	var lo uint64
	j, k := 0, 0
	for ic := 0; ic < c.InC; ic++ {
		base := ic * inH * inW
		for ky := 0; ky < c.K; ky++ {
			iy := iy0 + ky
			rowOK := iy >= 0 && iy < inH
			rowBase := base + iy*inW
			for kx := 0; kx < c.K; kx++ {
				u := uint64(upad)
				if rowOK {
					if ix := ix0 + kx; ix >= 0 && ix < inW {
						u = uint64(ub[rowBase+ix])
					}
				}
				sum += int32(u)
				if k&1 == 0 {
					lo = u
				} else {
					panel[j*4+ci] = lo | u<<32
					j++
				}
				k++
			}
		}
	}
	if k&1 == 1 {
		panel[j*4+ci] = lo | swarPadU<<32
	}
	return sum
}
