package nn

import "sync/atomic"

// Process-wide kernel dispatch counters. The QConv2D dispatcher (gemm.go)
// picks a backend per call; these counters make that decision observable —
// internal/core publishes them to the obs registry as host-class metrics
// alongside the parallel-substrate counters. Counts are diagnostics only
// (ClassHost): they depend on layer shapes and call volume, never feed back
// into the kernels, and cost one atomic add per layer call.
var kernelDispatch struct {
	gemm        atomic.Int64
	direct      atomic.Int64
	batchImages atomic.Int64
}

// KernelCounters is a snapshot of the quantized kernel dispatch counters.
type KernelCounters struct {
	// GEMMDispatches counts QConv2D calls routed to the im2col GEMM backend.
	GEMMDispatches int64
	// DirectDispatches counts QConv2D calls routed to the direct kernel.
	DirectDispatches int64
	// BatchImages counts images processed through batched network forwards.
	BatchImages int64
}

// KernelCounterSnapshot returns the current process-wide dispatch totals.
func KernelCounterSnapshot() KernelCounters {
	return KernelCounters{
		GEMMDispatches:   kernelDispatch.gemm.Load(),
		DirectDispatches: kernelDispatch.direct.Load(),
		BatchImages:      kernelDispatch.batchImages.Load(),
	}
}
