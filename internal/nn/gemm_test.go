package nn

import (
	"math/rand"
	"testing"

	"sov/internal/parallel"
)

// refQConv is the trusted scalar reference: per output pixel, the exact
// per-tap accumulation with zero-point subtraction (accEdge semantics
// everywhere), requantized. Every production backend must match it bit for
// bit.
func refQConv(c *QConv2D, in *QTensor) []int8 {
	oc, oh, ow := c.OutShape(in.C, in.H, in.W)
	out := make([]int8, oc*oh*ow)
	per := c.InC * c.K * c.K
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := c.Bias[o]
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						for kx := 0; kx < c.K; kx++ {
							iy := oy*c.Stride - c.Pad + ky
							ix := ox*c.Stride - c.Pad + kx
							if iy < 0 || iy >= in.H || ix < 0 || ix >= in.W {
								continue
							}
							w := int32(c.Weights[o*per+(ic*c.K+ky)*c.K+kx])
							acc += w * (int32(in.Data[(ic*in.H+iy)*in.W+ix]) - c.zeroIn)
						}
					}
				}
				out[(o*oh+oy)*ow+ox] = c.rq.apply(acc)
			}
		}
	}
	return out
}

// parityShapes sweeps odd widths, stride 2, border-heavy planes, and the
// dispatcher crossover sizes (gemmMinDot = 48, gemmMinPixels = 128).
var parityShapes = []struct {
	inC, outC, k, stride, pad, h, w int
	relu                            bool
}{
	{3, 4, 3, 1, 1, 8, 8, true},    // kd=27 < gemmMinDot: direct only
	{6, 5, 3, 1, 1, 12, 16, true},  // kd=54, P=192: both backends
	{6, 5, 3, 2, 1, 13, 9, false},  // stride 2, odd plane
	{6, 3, 3, 1, 0, 9, 17, true},   // no pad, odd width, OutC < panel height
	{16, 8, 3, 1, 1, 12, 12, true}, // kd=144: perception-layer shape
	{48, 4, 1, 1, 0, 11, 13, true}, // 1×1 kernel at the kd crossover
	{5, 7, 5, 2, 2, 11, 10, false}, // K=5, odd kd (pad element live)
	{6, 5, 3, 1, 1, 4, 40, true},   // wide rows: SWAR interior + border rows
	{6, 5, 3, 1, 1, 16, 8, true},   // P=128: exactly at gemmMinPixels
	{6, 5, 3, 1, 1, 16, 7, false},  // P=112: just below gemmMinPixels
	{1, 4, 3, 1, 1, 10, 30, true},  // single input channel
	{4, 4, 4, 1, 2, 9, 21, true},   // even K, fat pad
	{4, 6, 4, 2, 3, 9, 21, false},  // even K, stride 2, pad > K/2
}

func parityConv(t *testing.T, idx int) (*QConv2D, *QTensor) {
	t.Helper()
	s := parityShapes[idx]
	rng := rand.New(rand.NewSource(int64(900 + idx)))
	conv := NewConv2D(s.inC, s.outC, s.k, s.stride, s.pad, s.relu, rng)
	qc := NewQConv2D(conv, ChooseQuantParams(-0.7, 0.9), ChooseQuantParams(-0.4, 1.1))
	in := NewQTensor(s.inC, s.h, s.w, qc.InP)
	for i := range in.Data {
		in.Data[i] = int8(rng.Intn(256) - 128)
	}
	return qc, in
}

// TestGEMMDirectParity forces every backend over the shape sweep and
// asserts bit-exact equality against the scalar reference: the direct path
// (SWAR interior on), the direct path with the GEMM backend unavailable,
// and the im2col GEMM path where the shape is eligible.
func TestGEMMDirectParity(t *testing.T) {
	for idx := range parityShapes {
		qc, in := parityConv(t, idx)
		oc, oh, ow := qc.OutShape(in.C, in.H, in.W)
		want := refQConv(qc, in)

		out := NewQTensor(oc, oh, ow, qc.OutP)
		qc.ForwardInto(in, out) // dispatcher's choice
		if !eqInt8(out.Data, want) {
			t.Fatalf("shape %d: dispatcher output != reference", idx)
		}

		// Direct path, GEMM backend masked off.
		savedB := qc.gemm.b
		qc.gemm.b = nil
		for i := range out.Data {
			out.Data[i] = 0x55
		}
		qc.ForwardInto(in, out)
		qc.gemm.b = savedB
		if !eqInt8(out.Data, want) {
			t.Fatalf("shape %d: direct output != reference", idx)
		}

		// GEMM path, forced regardless of the pixel floor.
		if qc.gemm.b != nil {
			for i := range out.Data {
				out.Data[i] = 0x55
			}
			qc.forwardGEMM(in, out, oh, ow)
			if !eqInt8(out.Data, want) {
				t.Fatalf("shape %d: GEMM output != reference", idx)
			}
		}
	}
}

// TestGEMMParityAcrossWorkers checks both backends stay byte-identical when
// the column blocks and output channels fan out across a worker pool.
func TestGEMMParityAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(parallel.Workers())
	for _, idx := range []int{4, 7} { // perception shape + border-heavy shape
		qc, in := parityConv(t, idx)
		oc, oh, ow := qc.OutShape(in.C, in.H, in.W)
		want := refQConv(qc, in)
		for _, workers := range []int{1, 3, 8} {
			parallel.SetWorkers(workers)
			out := NewQTensor(oc, oh, ow, qc.OutP)
			qc.ForwardInto(in, out)
			if !eqInt8(out.Data, want) {
				t.Fatalf("shape %d workers %d: output != reference", idx, workers)
			}
			if qc.gemm.b != nil {
				for i := range out.Data {
					out.Data[i] = 0x55
				}
				qc.forwardGEMM(in, out, oh, ow)
				if !eqInt8(out.Data, want) {
					t.Fatalf("shape %d workers %d: GEMM output != reference", idx, workers)
				}
			}
		}
	}
}

// TestQFCSWARParity checks the pair-dot QFC against a scalar widened dot
// product over odd and even widths, including the ≤3-row tail.
func TestQFCSWARParity(t *testing.T) {
	for _, shape := range []struct{ in, out int }{
		{256, 128}, {255, 127}, {7, 9}, {1, 1}, {17, 6}, {64, 3},
	} {
		rng := rand.New(rand.NewSource(int64(1700 + shape.in)))
		fc := NewFC(shape.in, shape.out, true, rng)
		qf := NewQFC(fc, ChooseQuantParams(-0.6, 0.8), ChooseQuantParams(-0.2, 1.3))
		in := NewQTensor(shape.in, 1, 1, qf.InP)
		for i := range in.Data {
			in.Data[i] = int8(rng.Intn(256) - 128)
		}
		want := make([]int8, shape.out)
		for o := 0; o < shape.out; o++ {
			acc := qf.foldedBias[o]
			for i, v := range in.Data {
				acc += int32(qf.Weights[o*shape.in+i]) * int32(v)
			}
			want[o] = qf.rq.apply(acc)
		}
		out := NewQTensor(shape.out, 1, 1, qf.OutP)
		qf.ForwardInto(in, out)
		if !eqInt8(out.Data, want) {
			t.Fatalf("qfc %dx%d: SWAR output != scalar reference", shape.in, shape.out)
		}
	}
}

func eqInt8(a, b []int8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
