package nn

import (
	"math/rand"

	"sov/internal/parallel"
	"sov/internal/vision"
)

// GridBox is one raw detection-head output cell after decoding: a box in
// normalized image coordinates with an objectness score and class logits.
type GridBox struct {
	CX, CY, W, H float32 // normalized [0,1]
	Objectness   float32
	ClassScores  []float32
}

// YOLOHead is a single-scale grid detector (the "YOLO" of Table III): a
// small convolutional backbone followed by a 1×1 head predicting
// (objectness, cx, cy, w, h, classes...) per grid cell.
type YOLOHead struct {
	Backbone *Network
	Head     *Conv2D
	Classes  int
	GridH    int
	GridW    int
	inC      int
	inH      int
	inW      int
}

// NewTinyYOLO builds the detector for the given input size with
// deterministic weights. Three conv+pool stages reduce the input by 8×.
func NewTinyYOLO(inH, inW, classes int, seed int64) *YOLOHead {
	// Weight init draws from an explicit caller-provided seed (detrand:
	// never the global math/rand source).
	rng := rand.New(rand.NewSource(seed))
	backbone := &Network{Layers: []Layer{
		NewConv2D(1, 8, 3, 1, 1, true, rng),
		MaxPool2{},
		NewConv2D(8, 16, 3, 1, 1, true, rng),
		MaxPool2{},
		NewConv2D(16, 32, 3, 1, 1, true, rng),
		MaxPool2{},
	}}
	per := 5 + classes
	head := NewConv2D(32, per, 1, 1, 0, false, rng)
	return &YOLOHead{
		Backbone: backbone,
		Head:     head,
		Classes:  classes,
		GridH:    inH / 8,
		GridW:    inW / 8,
		inC:      1, inH: inH, inW: inW,
	}
}

// FromImage converts a vision.Image to the network's input tensor.
func FromImage(im *vision.Image) *Tensor {
	t := NewTensor(1, im.H, im.W)
	copy(t.Data, im.Pix)
	return t
}

// FromImageInto copies a vision.Image into t, which must be 1×H×W — the
// zero-allocation counterpart of FromImage for pooled input tensors.
func FromImageInto(im *vision.Image, t *Tensor) {
	if t.C != 1 || t.H != im.H || t.W != im.W {
		panic("nn: FromImageInto shape mismatch")
	}
	copy(t.Data, im.Pix)
}

// Infer runs the full forward pass and decodes the grid. Grid cells decode
// independently into fixed slots, so the decode fans out row-parallel with
// the same row-major output order as a serial scan.
func (y *YOLOHead) Infer(in *Tensor) []GridBox {
	return y.InferInto(in, nil)
}

// InferInto is the reusing variant of Infer: the forward pass borrows every
// intermediate activation from the tensor pools and the decode writes into
// out's slots, keeping their ClassScores backing arrays. Pass the previous
// cycle's slice back in and a warm steady state allocates nothing. Results
// are byte-identical to a fresh Infer.
func (y *YOLOHead) InferInto(in *Tensor, out []GridBox) []GridBox {
	feat := y.Backbone.ForwardPooled(in)
	oc, oh, ow := y.Head.OutShape(feat.C, feat.H, feat.W)
	raw := GetTensor(oc, oh, ow)
	y.Head.ForwardInto(feat, raw)
	if feat != in {
		PutTensor(feat)
	}
	n := raw.H * raw.W
	if cap(out) < n {
		grown := make([]GridBox, n)
		copy(grown, out) // keep already-allocated ClassScores backing arrays
		out = grown
	}
	out = out[:n]
	if parallel.Workers() <= 1 {
		for gy := 0; gy < raw.H; gy++ {
			for gx := 0; gx < raw.W; gx++ {
				y.decodeCell(raw, gy, gx, &out[gy*raw.W+gx])
			}
		}
	} else {
		parallel.ForRows(raw.H, func(g0, g1 int) {
			for gy := g0; gy < g1; gy++ {
				for gx := 0; gx < raw.W; gx++ {
					y.decodeCell(raw, gy, gx, &out[gy*raw.W+gx])
				}
			}
		})
	}
	PutTensor(raw)
	return out
}

// decodeCell decodes one grid cell into b, reusing its ClassScores array
// when large enough.
func (y *YOLOHead) decodeCell(raw *Tensor, gy, gx int, b *GridBox) {
	b.Objectness = Sigmoid(raw.At(0, gy, gx))
	b.CX = (float32(gx) + Sigmoid(raw.At(1, gy, gx))) / float32(raw.W)
	b.CY = (float32(gy) + Sigmoid(raw.At(2, gy, gx))) / float32(raw.H)
	b.W = Sigmoid(raw.At(3, gy, gx))
	b.H = Sigmoid(raw.At(4, gy, gx))
	if cap(b.ClassScores) < y.Classes {
		b.ClassScores = make([]float32, y.Classes)
	}
	b.ClassScores = b.ClassScores[:y.Classes]
	for c := 0; c < y.Classes; c++ {
		b.ClassScores[c] = Sigmoid(raw.At(5+c, gy, gx))
	}
}

// TotalFLOPs returns the MAC estimate of one forward pass.
func (y *YOLOHead) TotalFLOPs() int64 {
	f := y.Backbone.TotalFLOPs(y.inC, y.inH, y.inW)
	c, h, w := y.inC, y.inH, y.inW
	for _, l := range y.Backbone.Layers {
		c, h, w = l.OutShape(c, h, w)
	}
	return f + y.Head.FLOPs(c, h, w)
}
