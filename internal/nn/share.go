package nn

import "fmt"

// Cross-instance weight sharing (DESIGN.md §11). A fleet shard runs the
// same quantized detector for every vehicle it owns, but the quantized
// layers carry per-instance scratch (the serial-path accumulator rows,
// biased-byte input buffers, GEMM A panels, and FC input packs) that makes
// one model unsafe to forward from two goroutines at once. ShareClone
// splits the two concerns: the clone aliases every read-only tensor — int8
// weights, folded biases, SWAR constants, packed GEMM B panels, FC pair
// words, the sigmoid LUT — and zeroes only the mutable scratch, which
// regrows privately on the clone's first forward. N shards therefore pay
// one copy of the weight panels (they stay cache-resident across the whole
// fleet batch) plus N small scratch sets.

// ShareClone returns a QConv2D that shares the receiver's weights, biases,
// requantization constants, and packed GEMM B panels, with private scratch
// buffers. Safe to forward concurrently with the original.
func (c *QConv2D) ShareClone() *QConv2D {
	cp := *c
	cp.scratch = nil
	cp.ubuf = nil
	cp.gemm.abuf = nil
	cp.gemm.sbuf = nil
	return &cp
}

// ShareClone returns a QFC that shares the receiver's weights and packed
// pair words, with a private input-pack buffer. Safe to forward
// concurrently with the original.
func (f *QFC) ShareClone() *QFC {
	cp := *f
	cp.xpack = nil
	return &cp
}

// ShareClone returns a QNetwork whose weight-bearing layers are
// ShareClones of the receiver's and whose stateless layers are shared
// as-is. Unknown layer types panic: silently sharing a layer with hidden
// mutable state would be a data race, not a fallback.
func (n *QNetwork) ShareClone() *QNetwork {
	out := &QNetwork{Layers: make([]QLayer, len(n.Layers)), InParams: n.InParams}
	for i, l := range n.Layers {
		switch t := l.(type) {
		case *QConv2D:
			out.Layers[i] = t.ShareClone()
		case *QFC:
			out.Layers[i] = t.ShareClone()
		case QMaxPool2, QGlobalAvgPool:
			out.Layers[i] = l
		default:
			panic(fmt.Sprintf("nn: cannot share-clone layer %s", l.Name()))
		}
	}
	return out
}

// ShareClone returns a QYOLOHead sharing the receiver's weights and
// sigmoid table, with private per-layer scratch. Each fleet shard forwards
// its clone concurrently with the others while all of them stream the same
// weight panels.
func (y *QYOLOHead) ShareClone() *QYOLOHead {
	cp := *y
	cp.Backbone = y.Backbone.ShareClone()
	cp.Head = y.Head.ShareClone()
	return &cp
}
