package nn

// Fixed-point quantization substrate (DESIGN.md §8). The paper's FPGA
// operating points exist because the perception kernels run as fixed-point
// dataflow pipelines on the Zynq; this file is the software counterpart:
// per-tensor affine int8 quantization with int32 accumulation and
// integer-only requantization between layers, so a quantized network never
// round-trips through float between stages. The arithmetic is exact integer
// math — byte-identical for any worker count by construction — and every
// per-frame buffer is pooled, so a warm quantized forward pass allocates
// nothing.

import (
	"fmt"
	"math"
	"sync"

	"sov/internal/parallel"
)

// QuantParams is a per-tensor affine quantization: real = Scale*(q - Zero).
// Zero always lies in [-128, 127] so the real value 0 is exactly
// representable (padding and ReLU clamping depend on it).
type QuantParams struct {
	Scale float32
	Zero  int32
}

// Quantize maps a real value to its int8 code (round half away from zero,
// saturating).
func (p QuantParams) Quantize(v float32) int8 {
	q := p.Zero + int32(roundf(v/p.Scale))
	return satInt8(q)
}

// Dequantize maps an int8 code back to its real value.
func (p QuantParams) Dequantize(q int8) float32 {
	return p.Scale * float32(int32(q)-p.Zero)
}

// ChooseQuantParams fits affine int8 parameters to the real range
// [min, max]. The range is widened to include 0 so the zero point is exact;
// a degenerate range quantizes to a unit scale around zero.
func ChooseQuantParams(min, max float32) QuantParams {
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	if max-min < 1e-12 {
		return QuantParams{Scale: 1, Zero: 0}
	}
	scale := (max - min) / 255
	// Zero point: the integer code that represents real 0.
	zero := int32(roundf(-128 - min/scale))
	if zero < -128 {
		zero = -128
	}
	if zero > 127 {
		zero = 127
	}
	return QuantParams{Scale: scale, Zero: zero}
}

func roundf(v float32) float32 {
	return float32(math.Round(float64(v)))
}

func satInt8(q int32) int8 {
	if q < -128 {
		return -128
	}
	if q > 127 {
		return 127
	}
	return int8(q)
}

// QTensor is a CHW int8 tensor with its quantization parameters.
type QTensor struct {
	C, H, W int
	Data    []int8
	Params  QuantParams
}

// NewQTensor allocates a zero quantized tensor.
func NewQTensor(c, h, w int, p QuantParams) *QTensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: invalid qtensor shape %dx%dx%d", c, h, w))
	}
	return &QTensor{C: c, H: h, W: w, Data: make([]int8, c*h*w), Params: p}
}

// qtensorData/qtensorHeaders recycle quantized activation storage the same
// way the float tensor pools do, so the quantized forward path reaches a
// true zero-allocation steady state.
var (
	qtensorData    parallel.SlicePool[int8]
	qtensorHeaders struct {
		mu   sync.Mutex
		free []*QTensor
	}
)

// GetQTensor returns a pooled quantized tensor of the given shape with
// unspecified contents; pair with PutQTensor.
func GetQTensor(c, h, w int, p QuantParams) *QTensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: invalid qtensor shape %dx%dx%d", c, h, w))
	}
	qtensorHeaders.mu.Lock()
	var t *QTensor
	if n := len(qtensorHeaders.free); n > 0 {
		t = qtensorHeaders.free[n-1]
		qtensorHeaders.free[n-1] = nil
		qtensorHeaders.free = qtensorHeaders.free[:n-1]
	}
	qtensorHeaders.mu.Unlock()
	if t == nil {
		//sovlint:ignore hotalloc header-pool miss; headers are recycled via PutQTensor after warmup
		t = &QTensor{}
	}
	t.C, t.H, t.W = c, h, w
	t.Params = p
	t.Data = qtensorData.Get(c * h * w)
	return t
}

// PutQTensor releases a tensor obtained from GetQTensor back to the pools.
func PutQTensor(t *QTensor) {
	if t == nil || t.Data == nil {
		return
	}
	qtensorData.Put(t.Data)
	t.Data = nil
	qtensorHeaders.mu.Lock()
	qtensorHeaders.free = append(qtensorHeaders.free, t)
	qtensorHeaders.mu.Unlock()
}

// At returns element (c, y, x).
func (t *QTensor) At(c, y, x int) int8 { return t.Data[(c*t.H+y)*t.W+x] }

// QuantizeTensorInto fills q (which must match t's shape) with t quantized
// under q.Params. The zero-allocation entry point of the quantized path.
//
//sov:hotpath
func QuantizeTensorInto(q *QTensor, t *Tensor) {
	if q.C != t.C || q.H != t.H || q.W != t.W {
		panic(fmt.Sprintf("nn: quantize shape %dx%dx%d != %dx%dx%d", q.C, q.H, q.W, t.C, t.H, t.W))
	}
	inv := 1 / q.Params.Scale
	zero := q.Params.Zero
	for i, v := range t.Data {
		q.Data[i] = satInt8(zero + int32(roundf(v*inv)))
	}
}

// DequantizeTensorInto fills t (which must match q's shape) with q's real
// values.
//
//sov:hotpath
func DequantizeTensorInto(t *Tensor, q *QTensor) {
	if q.C != t.C || q.H != t.H || q.W != t.W {
		panic(fmt.Sprintf("nn: dequantize shape %dx%dx%d != %dx%dx%d", t.C, t.H, t.W, q.C, q.H, q.W))
	}
	s := q.Params.Scale
	zero := q.Params.Zero
	for i, v := range q.Data {
		t.Data[i] = s * float32(int32(v)-zero)
	}
}

// requant is an integer-only rescaling from the int32 accumulator domain to
// an output quantization: out = zero + round(acc * mult * 2^-shift). The
// multiplier/shift pair encodes the real ratio inScale*weightScale/outScale
// the way fixed-point inference stacks (and the Zynq dataflow pipelines) do,
// so the hot loops contain no floating-point operations at all.
type requant struct {
	mult  int32
	shift uint
	zero  int32
	// relu clamps the output at the zero point (real 0) when set, fusing
	// the activation into the requantization step.
	relu bool
}

// newRequant encodes the real multiplier m (> 0) as mult × 2^-shift with a
// 31-bit mantissa.
func newRequant(m float64, zero int32, relu bool) requant {
	if m <= 0 || math.IsInf(m, 0) || math.IsNaN(m) {
		panic(fmt.Sprintf("nn: invalid requant multiplier %g", m))
	}
	m0, exp := math.Frexp(m) // m = m0 * 2^exp, m0 in [0.5, 1)
	q := int64(math.Round(m0 * (1 << 31)))
	if q == 1<<31 {
		q >>= 1
		exp++
	}
	s := 31 - exp
	if s < 1 || s > 62 {
		panic(fmt.Sprintf("nn: requant multiplier %g out of fixed-point range", m))
	}
	return requant{mult: int32(q), shift: uint(s), zero: zero, relu: relu}
}

// apply rescales one accumulator to an int8 output code.
//
//sov:hotpath
func (r requant) apply(acc int32) int8 {
	p := int64(acc) * int64(r.mult)
	half := int64(1) << (r.shift - 1)
	if p >= 0 {
		p = (p + half) >> r.shift
	} else {
		p = -((-p + half) >> r.shift) // round half away from zero, sign-symmetric
	}
	q := int32(p) + r.zero
	if r.relu && q < r.zero {
		q = r.zero
	}
	return satInt8(q)
}

// quantizeWeights performs symmetric per-tensor weight quantization
// (zero = 0), returning the codes and the scale.
func quantizeWeights(w []float32) ([]int8, float32) {
	var maxAbs float32
	for _, v := range w {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	scale := maxAbs / 127
	out := make([]int8, len(w))
	inv := 1 / scale
	for i, v := range w {
		out[i] = satInt8(int32(roundf(v * inv)))
	}
	return out, scale
}

// quantizeBias maps float biases to the int32 accumulator domain
// (scale = inScale × weightScale, zero = 0).
func quantizeBias(b []float32, accScale float32) []int32 {
	out := make([]int32, len(b))
	inv := 1 / float64(accScale)
	for i, v := range b {
		out[i] = int32(math.Round(float64(v) * inv))
	}
	return out
}

// tensorRange returns the min/max over a float tensor's elements.
func tensorRange(t *Tensor) (min, max float32) {
	min, max = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// SigmoidLUT tabulates sigmoid over all 256 int8 codes of a quantization —
// the fixed-point detection head evaluates its activations by table lookup
// instead of exponentials.
type SigmoidLUT struct {
	Params QuantParams
	Table  [256]float32
}

// NewSigmoidLUT builds the table for the given activation quantization.
func NewSigmoidLUT(p QuantParams) *SigmoidLUT {
	l := &SigmoidLUT{Params: p}
	for q := -128; q <= 127; q++ {
		l.Table[q+128] = Sigmoid(p.Dequantize(int8(q)))
	}
	return l
}

// At returns sigmoid(dequantize(q)).
//
//sov:hotpath
func (l *SigmoidLUT) At(q int8) float32 { return l.Table[int32(q)+128] }

// ThresholdCode returns the smallest int8 code whose sigmoid meets or
// exceeds thr, or 127 when none does — detection decode compares raw codes
// against it before touching the table.
func (l *SigmoidLUT) ThresholdCode(thr float32) int8 {
	for q := -128; q <= 127; q++ {
		if l.Table[q+128] >= thr {
			return int8(q)
		}
	}
	return 127
}
