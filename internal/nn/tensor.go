// Package nn is a minimal CNN inference engine — the DNN substrate behind
// the object-detection workload (Table III: YOLO/Mask R-CNN). The paper's
// models are trained on proprietary field data; we run untrained (but
// deterministic) weights through the same computational structure so that
// the compute shape of DNN detection is real, while detection *accuracy* is
// modeled separately (internal/detect). Inference runs on the CPU with
// conv/pool/FC layers tiled over the internal/parallel worker pool (each
// output element keeps its serial accumulation order, so results are
// byte-identical for any worker count); the platform package maps its cost
// onto GPU/TX2/FPGA operating points.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"sov/internal/parallel"
)

// Tensor is a CHW float32 tensor.
type Tensor struct {
	C, H, W int
	Data    []float32
}

// NewTensor allocates a zero tensor.
func NewTensor(c, h, w int) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: invalid tensor shape %dx%dx%d", c, h, w))
	}
	return &Tensor{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// tensorData recycles activation storage through a size-classed free list;
// tensorHeaders recycles the Tensor headers themselves, so a pooled forward
// pass reaches a true zero-allocation steady state.
var (
	tensorData    parallel.SlicePool[float32]
	tensorHeaders struct {
		mu   sync.Mutex
		free []*Tensor
	}
)

// GetTensor returns a pooled tensor of the given shape with unspecified
// contents; pair with PutTensor. Layers that write every output element
// (conv, pool) can consume it directly.
func GetTensor(c, h, w int) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: invalid tensor shape %dx%dx%d", c, h, w))
	}
	tensorHeaders.mu.Lock()
	var t *Tensor
	if n := len(tensorHeaders.free); n > 0 {
		t = tensorHeaders.free[n-1]
		tensorHeaders.free[n-1] = nil
		tensorHeaders.free = tensorHeaders.free[:n-1]
	}
	tensorHeaders.mu.Unlock()
	if t == nil {
		t = &Tensor{}
	}
	t.C, t.H, t.W = c, h, w
	t.Data = tensorData.Get(c * h * w)
	return t
}

// PutTensor releases a tensor obtained from GetTensor back to the pools.
func PutTensor(t *Tensor) {
	if t == nil || t.Data == nil {
		return
	}
	tensorData.Put(t.Data)
	t.Data = nil
	tensorHeaders.mu.Lock()
	tensorHeaders.free = append(tensorHeaders.free, t)
	tensorHeaders.mu.Unlock()
}

// At returns element (c, y, x).
func (t *Tensor) At(c, y, x int) float32 { return t.Data[(c*t.H+y)*t.W+x] }

// Set assigns element (c, y, x).
func (t *Tensor) Set(c, y, x int, v float32) { t.Data[(c*t.H+y)*t.W+x] = v }

// Numel returns the element count.
func (t *Tensor) Numel() int { return len(t.Data) }

// Layer is one network stage.
type Layer interface {
	Forward(in *Tensor) *Tensor
	// FLOPs estimates multiply-accumulate work for an input shape; the
	// platform models scale latency with it.
	FLOPs(c, h, w int) int64
	// OutShape gives the output shape for an input shape.
	OutShape(c, h, w int) (int, int, int)
	Name() string
}

// IntoLayer is implemented by layers that can write into a caller-provided
// output tensor, enabling the pooled (allocation-free) forward path.
type IntoLayer interface {
	Layer
	// ForwardInto computes the layer output into out, which must have the
	// layer's OutShape for the input. Every output element is written, so
	// out may hold stale values on entry.
	ForwardInto(in, out *Tensor)
}

// Conv2D is a stride-s same/valid 2-D convolution with bias and optional
// fused ReLU.
type Conv2D struct {
	InC, OutC int
	K         int // kernel size (square)
	Stride    int
	Pad       int
	Weights   []float32 // [outC][inC][K][K]
	Bias      []float32
	ReLU      bool
}

// NewConv2D builds a conv layer with He-initialized deterministic weights.
func NewConv2D(inC, outC, k, stride, pad int, relu bool, rng *rand.Rand) *Conv2D {
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, ReLU: relu}
	n := outC * inC * k * k
	c.Weights = make([]float32, n)
	std := float32(math.Sqrt(2.0 / float64(inC*k*k)))
	for i := range c.Weights {
		c.Weights[i] = float32(rng.NormFloat64()) * std
	}
	c.Bias = make([]float32, outC)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("conv%dx%d/%d->%d", c.K, c.K, c.InC, c.OutC) }

// OutShape implements Layer.
func (c *Conv2D) OutShape(_, h, w int) (int, int, int) {
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return c.OutC, oh, ow
}

// FLOPs implements Layer.
func (c *Conv2D) FLOPs(_, h, w int) int64 {
	_, oh, ow := c.OutShape(0, h, w)
	return int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.K*c.K) * 2
}

// Forward implements Layer.
func (c *Conv2D) Forward(in *Tensor) *Tensor {
	oc, oh, ow := c.OutShape(in.C, in.H, in.W)
	out := NewTensor(oc, oh, ow)
	c.ForwardInto(in, out)
	return out
}

// ForwardInto implements IntoLayer. Output channels are independent; with
// more than one worker they fan out across the pool. Each output element
// keeps its serial accumulation order, so the tensor is byte-identical for
// any worker count. The serial path skips the fan-out closure entirely,
// keeping the pooled forward pass allocation-free.
//
//sov:hotpath
func (c *Conv2D) ForwardInto(in, out *Tensor) {
	if in.C != c.InC {
		panic(fmt.Sprintf("nn: conv input channels %d != %d", in.C, c.InC))
	}
	oc, oh, ow := c.OutShape(in.C, in.H, in.W)
	if out.C != oc || out.H != oh || out.W != ow {
		panic(fmt.Sprintf("nn: conv output shape %dx%dx%d != %dx%dx%d", out.C, out.H, out.W, oc, oh, ow))
	}
	if parallel.Workers() <= 1 {
		for o := 0; o < oc; o++ {
			c.forwardChannel(in, out, o, oh, ow)
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(oc, 1, func(o0, o1 int) {
		for o := o0; o < o1; o++ {
			c.forwardChannel(in, out, o, oh, ow)
		}
	})
}

// forwardChannel computes one output channel of the convolution.
//
//sov:hotpath
func (c *Conv2D) forwardChannel(in, out *Tensor, o, oh, ow int) {
	wBase := o * c.InC * c.K * c.K
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			sum := c.Bias[o]
			iy0 := oy*c.Stride - c.Pad
			ix0 := ox*c.Stride - c.Pad
			for ic := 0; ic < c.InC; ic++ {
				wc := wBase + ic*c.K*c.K
				for ky := 0; ky < c.K; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= in.H {
						continue
					}
					rowBase := (ic*in.H + iy) * in.W
					wRow := wc + ky*c.K
					for kx := 0; kx < c.K; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= in.W {
							continue
						}
						sum += c.Weights[wRow+kx] * in.Data[rowBase+ix]
					}
				}
			}
			if c.ReLU && sum < 0 {
				sum = 0
			}
			out.Set(o, oy, ox, sum)
		}
	}
}

// MaxPool2 is a 2×2 stride-2 max pool.
type MaxPool2 struct{}

// Name implements Layer.
func (MaxPool2) Name() string { return "maxpool2" }

// OutShape implements Layer.
func (MaxPool2) OutShape(c, h, w int) (int, int, int) { return c, h / 2, w / 2 }

// FLOPs implements Layer.
func (MaxPool2) FLOPs(c, h, w int) int64 { return int64(c) * int64(h/2) * int64(w/2) * 4 }

// Forward implements Layer.
func (MaxPool2) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.C, in.H/2, in.W/2)
	MaxPool2{}.ForwardInto(in, out)
	return out
}

// ForwardInto implements IntoLayer.
//
//sov:hotpath
func (MaxPool2) ForwardInto(in, out *Tensor) {
	if out.C != in.C || out.H != in.H/2 || out.W != in.W/2 {
		panic(fmt.Sprintf("nn: pool output shape %dx%dx%d != %dx%dx%d", out.C, out.H, out.W, in.C, in.H/2, in.W/2))
	}
	if parallel.Workers() <= 1 {
		for c := 0; c < in.C; c++ {
			poolChannel(in, out, c)
		}
		return
	}
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.For(in.C, 1, func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			poolChannel(in, out, c)
		}
	})
}

// poolChannel max-pools one channel.
//
//sov:hotpath
func poolChannel(in, out *Tensor, c int) {
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			m := in.At(c, 2*y, 2*x)
			if v := in.At(c, 2*y, 2*x+1); v > m {
				m = v
			}
			if v := in.At(c, 2*y+1, 2*x); v > m {
				m = v
			}
			if v := in.At(c, 2*y+1, 2*x+1); v > m {
				m = v
			}
			out.Set(c, y, x, m)
		}
	}
}

// Network is an ordered stack of layers.
type Network struct {
	Layers []Layer
}

// Forward runs the stack.
func (n *Network) Forward(in *Tensor) *Tensor {
	t := in
	for _, l := range n.Layers {
		t = l.Forward(t)
	}
	return t
}

// ForwardPooled runs the stack with every intermediate activation borrowed
// from the tensor pools, so a warm steady state allocates nothing. The
// result is byte-identical to Forward. The returned tensor is pooled —
// release it with PutTensor when done (unless it is the input itself, which
// is returned unchanged for an empty stack).
func (n *Network) ForwardPooled(in *Tensor) *Tensor {
	cur := in
	for _, l := range n.Layers {
		il, ok := l.(IntoLayer)
		if !ok {
			next := l.Forward(cur)
			if cur != in {
				PutTensor(cur)
			}
			cur = next
			continue
		}
		c, h, w := l.OutShape(cur.C, cur.H, cur.W)
		out := GetTensor(c, h, w)
		il.ForwardInto(cur, out)
		if cur != in {
			PutTensor(cur)
		}
		cur = out
	}
	return cur
}

// TotalFLOPs estimates the MAC work for an input shape.
func (n *Network) TotalFLOPs(c, h, w int) int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.FLOPs(c, h, w)
		c, h, w = l.OutShape(c, h, w)
	}
	return total
}

// Sigmoid is the logistic function used on the detection head outputs.
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}
