package nn

// Batched multi-camera inference (DESIGN.md §10). A vehicle's four fisheye
// cameras run the same quantized network every cycle; forwarding them
// image-major re-streams every layer's weight panels per camera, while
// forwarding layer-major walks the batch inside each layer so the packed
// GEMM B panels and QFC pair words stay cache-resident across all images.
// The per-image arithmetic is untouched — batched outputs are byte-identical
// to running each image alone, for any worker count.

// ForwardBatchPooled runs the stack over a batch layer-major: every layer
// forwards all images before the next layer starts, so one weight-panel
// traversal's cache footprint serves the whole batch. Intermediate
// activations borrow from the tensor pools; returned tensors are pooled
// (release with PutQTensor) unless the stack is empty, in which case the
// inputs come back unchanged. dst is reused as the batch slot array
// (pass the previous cycle's slice to avoid growing it).
//
//sov:hotpath
func (n *QNetwork) ForwardBatchPooled(dst []*QTensor, ins []*QTensor) []*QTensor {
	dst = append(dst[:0], ins...)
	for _, l := range n.Layers {
		for i, cur := range dst {
			c, h, w := l.OutShape(cur.C, cur.H, cur.W)
			out := GetQTensor(c, h, w, l.OutParams())
			l.ForwardInto(cur, out)
			if cur != ins[i] {
				PutQTensor(cur)
			}
			dst[i] = out
		}
	}
	return dst
}

// ForwardRawBatch is the batched ForwardRaw: it quantizes each input, runs
// the backbone and head layer-major across the batch, and returns one raw
// int8 grid tensor per image (pooled — release each with PutQTensor). dst
// is reused as the batch slot array. Outputs are byte-identical to calling
// ForwardRaw per image.
//
//sov:hotpath
func (y *QYOLOHead) ForwardRawBatch(dst []*QTensor, ins []*Tensor) []*QTensor {
	dst = dst[:0]
	for _, in := range ins {
		qin := GetQTensor(in.C, in.H, in.W, y.Backbone.InParams)
		QuantizeTensorInto(qin, in)
		dst = append(dst, qin)
	}
	for _, l := range y.Backbone.Layers {
		for i, cur := range dst {
			c, h, w := l.OutShape(cur.C, cur.H, cur.W)
			out := GetQTensor(c, h, w, l.OutParams())
			l.ForwardInto(cur, out)
			PutQTensor(cur)
			dst[i] = out
		}
	}
	for i, feat := range dst {
		oc, oh, ow := y.Head.OutShape(feat.C, feat.H, feat.W)
		raw := GetQTensor(oc, oh, ow, y.Head.OutParams())
		y.Head.ForwardInto(feat, raw)
		PutQTensor(feat)
		dst[i] = raw
	}
	kernelDispatch.batchImages.Add(int64(len(ins)))
	return dst
}
