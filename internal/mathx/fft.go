package mathx

import (
	"fmt"
	"math"
	"math/bits"

	"sov/internal/parallel"
)

// FFT computes the in-place radix-2 Cooley–Tukey FFT of x. len(x) must be a
// power of two. Set inverse to compute the (scaled) inverse transform.
func FFT(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("mathx: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wstep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// FFT2D computes the 2-D FFT of a rows×cols image stored row-major in x,
// in place. Both dimensions must be powers of two.
//
// Row and column transforms are independent, so they run tiled on the
// worker pool; each 1-D FFT is the same serial instruction stream for any
// worker count, keeping the result byte-identical.
func FFT2D(x []complex128, rows, cols int, inverse bool) error {
	if rows*cols != len(x) {
		return fmt.Errorf("mathx: FFT2D shape %dx%d != len %d", rows, cols, len(x))
	}
	if len(x) == 0 {
		return nil
	}
	if rows&(rows-1) != 0 {
		return fmt.Errorf("mathx: FFT length %d is not a power of two", rows)
	}
	if cols&(cols-1) != 0 {
		return fmt.Errorf("mathx: FFT length %d is not a power of two", cols)
	}
	// Keep small transforms serial: a tile should carry a few thousand
	// elements before the fan-out is worth it.
	grain := 1 + 4096/cols
	// Rows.
	parallel.For(rows, grain, func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			_ = FFT(x[r*cols:(r+1)*cols], inverse) // length pre-validated
		}
	})
	// Columns (gather/scatter through a per-tile scratch buffer).
	parallel.For(cols, 1+4096/rows, func(c0, c1 int) {
		col := parallel.GetC128(rows)
		for c := c0; c < c1; c++ {
			for r := 0; r < rows; r++ {
				col[r] = x[r*cols+c]
			}
			_ = FFT(col, inverse)
			for r := 0; r < rows; r++ {
				x[r*cols+c] = col[r]
			}
		}
		parallel.PutC128(col)
	})
	return nil
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
