package mathx

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place radix-2 Cooley–Tukey FFT of x. len(x) must be a
// power of two. Set inverse to compute the (scaled) inverse transform.
func FFT(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("mathx: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wstep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// FFT2D computes the 2-D FFT of a rows×cols image stored row-major in x,
// in place. Both dimensions must be powers of two.
func FFT2D(x []complex128, rows, cols int, inverse bool) error {
	if rows*cols != len(x) {
		return fmt.Errorf("mathx: FFT2D shape %dx%d != len %d", rows, cols, len(x))
	}
	// Rows.
	for r := 0; r < rows; r++ {
		if err := FFT(x[r*cols:(r+1)*cols], inverse); err != nil {
			return err
		}
	}
	// Columns (gather/scatter through a scratch buffer).
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		if err := FFT(col, inverse); err != nil {
			return err
		}
		for r := 0; r < rows; r++ {
			x[r*cols+c] = col[r]
		}
	}
	return nil
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
