package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatMulIdentity(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {3, 4}})
	got := MatMul(a, Eye(2))
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatalf("a*I != a: %v", got.Data)
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := MatFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := MatMul(a, b)
	want := MatFromRows([][]float64{{58, 64}, {139, 154}})
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("matmul = %v, want %v", got.Data, want.Data)
		}
	}
}

func TestMatTranspose(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", at.Data)
	}
}

func TestMatAddSub(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatFromRows([][]float64{{4, 3}, {2, 1}})
	s := MatAdd(a, b)
	for _, v := range s.Data {
		if v != 5 {
			t.Fatalf("add = %v", s.Data)
		}
	}
	d := MatSub(s, b)
	for i := range d.Data {
		if d.Data[i] != a.Data[i] {
			t.Fatalf("sub = %v", d.Data)
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix a = L*Lt with known solution.
	a := MatFromRows([][]float64{
		{4, 2, 0.6},
		{2, 5, 1.2},
		{0.6, 1.2, 3},
	})
	xTrue := []float64{1, -2, 0.5}
	b := a.MulVec(xTrue)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, xTrue)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestInvertSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 6
	// Build SPD: B*Bt + n*I.
	b := NewMat(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := MatAdd(MatMul(b, b.T()), Eye(n).ScaleInPlace(float64(n)))
	inv, err := InvertSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := MatMul(a, inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-9) {
				t.Fatalf("a*inv(a)[%d][%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {4, 3}})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("symmetrize = %v", a.Data)
	}
}

func TestMatPanicsOnBadShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMat(2, 3), NewMat(2, 3))
}

func TestSolveSPDDimMismatch(t *testing.T) {
	a := Eye(3)
	if _, err := SolveSPD(a, []float64{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMulVecKnown(t *testing.T) {
	a := MatFromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := a.MulVec([]float64{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Fatalf("mulvec = %v", got)
	}
}

func TestEyeScale(t *testing.T) {
	m := Eye(3).ScaleInPlace(2.5)
	if m.At(1, 1) != 2.5 || m.At(0, 1) != 0 {
		t.Fatalf("eye scale = %v", m.Data)
	}
	if math.Abs(m.At(2, 2)-2.5) > 0 {
		t.Fatal("diag wrong")
	}
}
