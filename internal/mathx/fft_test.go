package mathx

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x, false); err != nil {
			t.Fatal(err)
		}
		if err := FFT(x, true); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d roundtrip mismatch at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTKnownImpulse(t *testing.T) {
	// FFT of a unit impulse is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x, false); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v", i, v)
		}
	}
}

func TestFFTKnownSinusoid(t *testing.T) {
	// A pure tone at bin k concentrates energy at k and n-k.
	n, k := 32, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(k*i)/float64(n)), 0)
	}
	if err := FFT(x, false); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == k || i == n-k {
			if math.Abs(mag-float64(n)/2) > 1e-9 {
				t.Fatalf("bin %d magnitude = %v, want %v", i, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leakage at bin %d: %v", i, mag)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 12), false); err == nil {
		t.Fatal("expected error for n=12")
	}
	if err := FFT(nil, false); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, cols := 16, 8
	x := make([]complex128, rows*cols)
	orig := make([]complex128, rows*cols)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
		orig[i] = x[i]
	}
	if err := FFT2D(x, rows, cols, false); err != nil {
		t.Fatal(err)
	}
	if err := FFT2D(x, rows, cols, true); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D roundtrip mismatch at %d", i)
		}
	}
}

func TestFFT2DParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows, cols := 8, 8
	x := make([]complex128, rows*cols)
	var spatial float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		spatial += real(x[i] * cmplx.Conj(x[i]))
	}
	if err := FFT2D(x, rows, cols, false); err != nil {
		t.Fatal(err)
	}
	var freq float64
	for i := range x {
		freq += real(x[i] * cmplx.Conj(x[i]))
	}
	freq /= float64(rows * cols)
	if math.Abs(spatial-freq) > 1e-9*spatial {
		t.Fatalf("Parseval violated: %v vs %v", spatial, freq)
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {17, 32}, {64, 64}, {65, 128},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func BenchmarkFFT1K(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%17), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FFT(x, false)
		_ = FFT(x, true)
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 64
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		sum[i] = 2*a[i] + 3*b[i]
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	fs := append([]complex128(nil), sum...)
	if err := FFT(fa, false); err != nil {
		t.Fatal(err)
	}
	if err := FFT(fb, false); err != nil {
		t.Fatal(err)
	}
	if err := FFT(fs, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 2*fa[i] + 3*fb[i]
		if cmplx.Abs(fs[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}
