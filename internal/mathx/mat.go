package mathx

import (
	"fmt"
	"math"
)

// Mat is a small dense row-major matrix. It is sized for the SoV's state
// estimators (EKF states of a few tens of dimensions), not for large-scale
// numerics.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a Rows×Cols zero matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MatFromRows builds a matrix from row slices; all rows must share a length.
func MatFromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		panic("mathx: MatFromRows with no rows")
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("mathx: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Mat) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MatMul returns a*b.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: matmul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatAdd returns a+b.
func MatAdd(a, b *Mat) *Mat {
	checkSameShape(a, b, "add")
	out := NewMat(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// MatSub returns a-b.
func MatSub(a, b *Mat) *Mat {
	checkSameShape(a, b, "sub")
	out := NewMat(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// ScaleInPlace multiplies every element by s and returns m.
func (m *Mat) ScaleInPlace(s float64) *Mat {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Symmetrize replaces m with (m + mᵀ)/2; used to keep EKF covariances
// symmetric under floating-point drift.
func (m *Mat) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mathx: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MulVec returns m*v for a column vector v.
func (m *Mat) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mathx: mulvec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Cholesky factors a symmetric positive-definite matrix as L*Lᵀ and returns
// the lower-triangular L. It returns an error when the matrix is not
// (numerically) positive definite.
func Cholesky(a *Mat) (*Mat, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mathx: cholesky on non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("mathx: matrix not positive definite at pivot %d (%g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveSPD solves a*x = b for symmetric positive-definite a via Cholesky.
func SolveSPD(a *Mat, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("mathx: solve dimension mismatch %d vs %d", len(b), n)
	}
	// Forward substitution: L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// InvertSPD inverts a symmetric positive-definite matrix via Cholesky
// column solves. Intended for the small innovation covariances in the EKF.
func InvertSPD(a *Mat) (*Mat, error) {
	n := a.Rows
	inv := NewMat(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := SolveSPD(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

func checkSameShape(a, b *Mat, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mathx: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
