package mathx

import "math"

// Quat is a unit quaternion (W + Xi + Yj + Zk) representing a rotation.
// The identity rotation is Quat{W: 1}.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds a quaternion rotating by angle radians about axis.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	axis = axis.Normalized()
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: axis.X * s, Y: axis.Y * s, Z: axis.Z * s}
}

// QuatFromYaw builds a rotation about +Z by yaw radians.
func QuatFromYaw(yaw float64) Quat {
	return QuatFromAxisAngle(Vec3{Z: 1}, yaw)
}

// Mul returns the Hamilton product q*r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized rescales q to unit length. The identity is returned for a
// degenerate zero quaternion so downstream rotations stay finite.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n == 0 {
		return QuatIdentity()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation to vector v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q * (0,v) * q⁻¹ expanded to avoid building intermediates.
	t := Vec3{q.X, q.Y, q.Z}.Cross(v).Scale(2)
	return v.Add(t.Scale(q.W)).Add(Vec3{q.X, q.Y, q.Z}.Cross(t))
}

// Integrate advances the orientation by angular velocity omega (rad/s, body
// frame) over dt seconds using the exponential map.
func (q Quat) Integrate(omega Vec3, dt float64) Quat {
	theta := omega.Norm() * dt
	if theta < 1e-12 {
		// Small-angle first-order update.
		dq := Quat{W: 1, X: omega.X * dt / 2, Y: omega.Y * dt / 2, Z: omega.Z * dt / 2}
		return q.Mul(dq).Normalized()
	}
	axis := omega.Normalized()
	return q.Mul(QuatFromAxisAngle(axis, theta)).Normalized()
}

// Yaw extracts the heading (rotation about +Z) in radians.
func (q Quat) Yaw() float64 {
	siny := 2 * (q.W*q.Z + q.X*q.Y)
	cosy := 1 - 2*(q.Y*q.Y+q.Z*q.Z)
	return math.Atan2(siny, cosy)
}

// RotationMatrix returns the 3x3 rotation matrix equivalent of q as a
// row-major Mat.
func (q Quat) RotationMatrix() *Mat {
	m := NewMat(3, 3)
	w, x, y, z := q.W, q.X, q.Y, q.Z
	m.Set(0, 0, 1-2*(y*y+z*z))
	m.Set(0, 1, 2*(x*y-w*z))
	m.Set(0, 2, 2*(x*z+w*y))
	m.Set(1, 0, 2*(x*y+w*z))
	m.Set(1, 1, 1-2*(x*x+z*z))
	m.Set(1, 2, 2*(y*z-w*x))
	m.Set(2, 0, 2*(x*z-w*y))
	m.Set(2, 1, 2*(y*z+w*x))
	m.Set(2, 2, 1-2*(x*x+y*y))
	return m
}
