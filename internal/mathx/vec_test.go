package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec2Basics(t *testing.T) {
	v := Vec2{3, 4}
	if v.Norm() != 5 {
		t.Fatalf("norm = %v, want 5", v.Norm())
	}
	if got := v.Add(Vec2{1, -1}); got != (Vec2{4, 3}) {
		t.Fatalf("add = %v", got)
	}
	if got := v.Sub(Vec2{3, 4}); got != (Vec2{}) {
		t.Fatalf("sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec2{6, 8}) {
		t.Fatalf("scale = %v", got)
	}
	if got := v.Dot(Vec2{1, 1}); got != 7 {
		t.Fatalf("dot = %v", got)
	}
}

func TestVec2Rotate(t *testing.T) {
	v := Vec2{1, 0}
	r := v.Rotate(math.Pi / 2)
	if !almostEq(r.X, 0, 1e-12) || !almostEq(r.Y, 1, 1e-12) {
		t.Fatalf("rotate 90 = %v", r)
	}
	if !almostEq(v.Rotate(math.Pi).Angle(), math.Pi, 1e-12) {
		t.Fatalf("angle after pi rotate = %v", v.Rotate(math.Pi).Angle())
	}
}

func TestVec2RotatePreservesNorm(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		theta = math.Mod(theta, 2*math.Pi)
		v := Vec2{x, y}
		return almostEq(v.Rotate(theta).Norm(), v.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	c := a.Cross(b)
	if !almostEq(c.Dot(a), 0, 1e-12) || !almostEq(c.Dot(b), 0, 1e-12) {
		t.Fatalf("cross not orthogonal: %v", c)
	}
	if a.Cross(a).Norm() != 0 {
		t.Fatalf("a x a != 0")
	}
}

func TestVec3Normalized(t *testing.T) {
	if got := (Vec3{}).Normalized(); got != (Vec3{}) {
		t.Fatalf("zero normalized = %v", got)
	}
	n := Vec3{0, 3, 4}.Normalized()
	if !almostEq(n.Norm(), 1, 1e-12) {
		t.Fatalf("norm = %v", n.Norm())
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-2.5 * math.Pi, -0.5 * math.Pi},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapAngleRange(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 64*math.Pi)
		w := WrapAngle(a)
		return w > -math.Pi-1e-9 && w <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerp(t *testing.T) {
	if Lerp(0, 10, 0.5) != 5 {
		t.Fatal("lerp midpoint")
	}
	if Lerp(2, 4, 0) != 2 || Lerp(2, 4, 1) != 4 {
		t.Fatal("lerp endpoints")
	}
}
