package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuatIdentityRotate(t *testing.T) {
	v := Vec3{1, 2, 3}
	if got := QuatIdentity().Rotate(v); got.DistTo(v) > 1e-12 {
		t.Fatalf("identity rotate = %v", got)
	}
}

func TestQuatAxisAngle(t *testing.T) {
	q := QuatFromAxisAngle(Vec3{Z: 1}, math.Pi/2)
	got := q.Rotate(Vec3{1, 0, 0})
	want := Vec3{0, 1, 0}
	if got.DistTo(want) > 1e-12 {
		t.Fatalf("rotate x by 90 about z = %v, want %v", got, want)
	}
}

func TestQuatYaw(t *testing.T) {
	for _, yaw := range []float64{0, 0.3, -1.2, math.Pi / 2, 3} {
		q := QuatFromYaw(yaw)
		if !almostEq(q.Yaw(), yaw, 1e-12) {
			t.Errorf("yaw roundtrip %v -> %v", yaw, q.Yaw())
		}
	}
}

func TestQuatMulComposition(t *testing.T) {
	qa := QuatFromYaw(0.5)
	qb := QuatFromYaw(0.25)
	v := Vec3{1, 0, 0}
	composed := qa.Mul(qb).Rotate(v)
	sequential := qa.Rotate(qb.Rotate(v))
	if composed.DistTo(sequential) > 1e-12 {
		t.Fatalf("composition mismatch: %v vs %v", composed, sequential)
	}
}

func TestQuatConjInverse(t *testing.T) {
	q := QuatFromAxisAngle(Vec3{1, 1, 0.3}, 0.7)
	v := Vec3{0.2, -3, 1.5}
	back := q.Conj().Rotate(q.Rotate(v))
	if back.DistTo(v) > 1e-12 {
		t.Fatalf("conj not inverse: %v vs %v", back, v)
	}
}

func TestQuatRotatePreservesNorm(t *testing.T) {
	f := func(ax, ay, az, angle, vx, vy, vz float64) bool {
		for _, x := range []float64{ax, ay, az, angle, vx, vy, vz} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		axis := Vec3{math.Mod(ax, 10), math.Mod(ay, 10), math.Mod(az, 10)}
		if axis.Norm() == 0 {
			axis = Vec3{Z: 1}
		}
		v := Vec3{math.Mod(vx, 1e3), math.Mod(vy, 1e3), math.Mod(vz, 1e3)}
		q := QuatFromAxisAngle(axis, math.Mod(angle, 2*math.Pi))
		return almostEq(q.Rotate(v).Norm(), v.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuatIntegrate(t *testing.T) {
	// Integrating a constant yaw rate of 1 rad/s for 1 s in small steps
	// should yield ~1 rad of yaw.
	q := QuatIdentity()
	omega := Vec3{Z: 1}
	for i := 0; i < 1000; i++ {
		q = q.Integrate(omega, 0.001)
	}
	if !almostEq(q.Yaw(), 1.0, 1e-6) {
		t.Fatalf("integrated yaw = %v, want 1.0", q.Yaw())
	}
	if !almostEq(q.Norm(), 1, 1e-9) {
		t.Fatalf("norm drifted: %v", q.Norm())
	}
}

func TestQuatIntegrateZeroRate(t *testing.T) {
	q := QuatFromYaw(0.4)
	q2 := q.Integrate(Vec3{}, 0.01)
	if !almostEq(q2.Yaw(), 0.4, 1e-12) {
		t.Fatalf("zero-rate integrate changed yaw: %v", q2.Yaw())
	}
}

func TestQuatRotationMatrixAgrees(t *testing.T) {
	q := QuatFromAxisAngle(Vec3{0.3, -0.2, 0.9}, 1.1)
	m := q.RotationMatrix()
	v := Vec3{1.5, -0.5, 2}
	mv := m.MulVec([]float64{v.X, v.Y, v.Z})
	qv := q.Rotate(v)
	if !almostEq(mv[0], qv.X, 1e-12) || !almostEq(mv[1], qv.Y, 1e-12) || !almostEq(mv[2], qv.Z, 1e-12) {
		t.Fatalf("matrix %v vs quat %v", mv, qv)
	}
}
