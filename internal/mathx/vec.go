// Package mathx provides the small linear-algebra and signal-processing
// primitives shared by the SoV subsystems: 2-D/3-D vectors, quaternions,
// small dense matrices with Cholesky factorization, and radix-2 FFTs.
//
// Everything is allocation-conscious: the hot paths (EKF propagation, KCF
// correlation) reuse caller-provided buffers where it matters.
package mathx

import "math"

// Vec2 is a 2-D vector (planar positions, image coordinates).
type Vec2 struct {
	X, Y float64
}

// Add returns v + u.
func (v Vec2) Add(u Vec2) Vec2 { return Vec2{v.X + u.X, v.Y + u.Y} }

// Sub returns v - u.
func (v Vec2) Sub(u Vec2) Vec2 { return Vec2{v.X - u.X, v.Y - u.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the inner product of v and u.
func (v Vec2) Dot(u Vec2) float64 { return v.X*u.X + v.Y*u.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// DistTo returns the Euclidean distance between v and u.
func (v Vec2) DistTo(u Vec2) float64 { return v.Sub(u).Norm() }

// Rotate returns v rotated by theta radians counter-clockwise.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Angle returns atan2(Y, X).
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Vec3 is a 3-D vector (world positions, accelerations, angular rates).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product of v and u.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v × u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// DistTo returns the Euclidean distance between v and u.
func (v Vec3) DistTo(u Vec3) float64 { return v.Sub(u).Norm() }

// Normalized returns v/|v|, or the zero vector when |v| == 0.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// XY projects v onto the ground plane.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// WrapAngle normalizes an angle to (-pi, pi].
func WrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
