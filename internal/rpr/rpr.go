// Package rpr models the runtime-partial-reconfiguration engine of
// Sec. V-B3 / Fig. 9: a decoupled Tx→FIFO→Rx datapath that streams partial
// bitstreams from DRAM into the FPGA's Internal Configuration Access Port
// (ICAP) without CPU involvement, versus the stock CPU-mediated path. The
// cycle-level model reproduces the paper's numbers: ≥350 MB/s engine
// throughput against ~300 KB/s for the CPU path, <3 ms swaps, ~2.1 mJ per
// reconfiguration, in ~400 LUTs + 400 FFs.
package rpr

import (
	"fmt"
	"time"
)

// EngineConfig describes the reconfiguration datapath.
type EngineConfig struct {
	// ClockHz is the configuration clock (100 MHz on the Zynq).
	ClockHz float64
	// ICAPBytesPerCycle is the ICAP port width (4 bytes).
	ICAPBytesPerCycle int
	// MemBytesPerBeat is the DRAM read width per burst beat (8 bytes).
	MemBytesPerBeat int
	// BurstBeats is the beats per memory burst (one handshake per burst).
	BurstBeats int
	// HandshakeCycles is the fixed cost of starting a burst.
	HandshakeCycles int
	// FIFOBytes decouples Tx from Rx (128 B suffices per the paper).
	FIFOBytes int
	// EnginePowerW is the datapath's active power.
	EnginePowerW float64
}

// DefaultEngineConfig returns the deployed engine parameters.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		ClockHz:           100e6,
		ICAPBytesPerCycle: 4,
		MemBytesPerBeat:   8,
		BurstBeats:        16,
		HandshakeCycles:   4,
		FIFOBytes:         128,
		EnginePowerW:      0.7,
	}
}

// Resources reports the engine's FPGA footprint (~400 FFs and ~400 LUTs).
type Resources struct {
	LUTs, FFs int
}

// EngineResources returns the datapath footprint.
func EngineResources() Resources { return Resources{LUTs: 400, FFs: 400} }

// Result summarizes one reconfiguration transfer.
type Result struct {
	Bytes      int
	Duration   time.Duration
	Throughput float64 // bytes/second
	EnergyJ    float64
	Cycles     int64
}

// Engine is the decoupled Tx/FIFO/Rx reconfiguration datapath.
type Engine struct {
	Cfg EngineConfig
	// telemetry
	swaps   int
	total   time.Duration
	energyJ float64
}

// NewEngine returns an engine with the given config.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.ClockHz <= 0 || cfg.ICAPBytesPerCycle <= 0 || cfg.FIFOBytes <= 0 {
		panic(fmt.Sprintf("rpr: invalid engine config %+v", cfg))
	}
	return &Engine{Cfg: cfg}
}

// Transfer simulates streaming a bitstream of the given size cycle by
// cycle: Tx bursts from memory into the FIFO (one handshake per burst,
// critically not per word — the design's key trick), while Rx drains the
// FIFO into the ICAP at its port width every cycle.
func (e *Engine) Transfer(bytes int) Result {
	cfg := e.Cfg
	fifo := 0
	sent := 0     // bytes pushed by Tx
	consumed := 0 // bytes accepted by ICAP
	var cycles int64
	burstRemaining := 0
	handshake := 0
	for consumed < bytes {
		cycles++
		// Tx side.
		if sent < bytes {
			if burstRemaining == 0 && handshake == 0 {
				handshake = cfg.HandshakeCycles
			}
			if handshake > 0 {
				handshake--
				if handshake == 0 {
					burstRemaining = cfg.BurstBeats
				}
			} else if burstRemaining > 0 && fifo+cfg.MemBytesPerBeat <= cfg.FIFOBytes {
				push := cfg.MemBytesPerBeat
				if sent+push > bytes {
					push = bytes - sent
				}
				fifo += push
				sent += push
				burstRemaining--
			}
		}
		// Rx side drains into the ICAP.
		if fifo > 0 {
			drain := cfg.ICAPBytesPerCycle
			if drain > fifo {
				drain = fifo
			}
			fifo -= drain
			consumed += drain
		}
		if cycles > int64(bytes)*100+1000 {
			panic("rpr: transfer did not converge")
		}
	}
	dur := time.Duration(float64(cycles) / cfg.ClockHz * float64(time.Second))
	res := Result{
		Bytes:      bytes,
		Duration:   dur,
		Throughput: float64(bytes) / dur.Seconds(),
		EnergyJ:    cfg.EnginePowerW * dur.Seconds(),
		Cycles:     cycles,
	}
	e.swaps++
	e.total += dur
	e.energyJ += res.EnergyJ
	return res
}

// Stats reports cumulative swaps, time, and energy.
func (e *Engine) Stats() (swaps int, total time.Duration, energyJ float64) {
	return e.swaps, e.total, e.energyJ
}

// CPUDriven models the stock Zynq flow: the processing system copies the
// bitstream through the kernel driver word by word (~300 KB/s effective)
// at full CPU power.
type CPUDriven struct {
	// ThroughputBps is the effective rate (the paper: 300 KB/s).
	ThroughputBps float64
	// PowerW is the CPU power burned while copying.
	PowerW float64
}

// DefaultCPUDriven returns the measured stock path.
func DefaultCPUDriven() CPUDriven {
	return CPUDriven{ThroughputBps: 300 * 1024, PowerW: 4}
}

// Transfer returns the stock path's cost for a bitstream.
func (c CPUDriven) Transfer(bytes int) Result {
	dur := time.Duration(float64(bytes) / c.ThroughputBps * float64(time.Second))
	return Result{
		Bytes:      bytes,
		Duration:   dur,
		Throughput: c.ThroughputBps,
		EnergyJ:    c.PowerW * dur.Seconds(),
	}
}

// Bitstream identifies a reconfigurable accelerator variant.
type Bitstream struct {
	Name  string
	Bytes int
}

// The two localization front-end variants of Sec. V-B3: ORB-style feature
// extraction for key frames and Lucas–Kanade tracking for non-key frames
// (the latter executes in 10 ms, 50% faster). Both partial bitstreams are
// ~1 MB, keeping swaps under 3 ms.
var (
	BitstreamFeatureExtract = Bitstream{Name: "feature-extract", Bytes: 1 << 20}
	BitstreamFeatureTrack   = Bitstream{Name: "feature-track", Bytes: 900 * 1024}
)

// Manager time-shares one reconfigurable region between bitstream variants,
// swapping only when the requested variant differs from the loaded one.
type Manager struct {
	Engine  *Engine
	current string
	swaps   int
	hits    int
}

// NewManager returns a manager over a fresh default engine.
func NewManager() *Manager {
	return &Manager{Engine: NewEngine(DefaultEngineConfig())}
}

// Require ensures the named bitstream is loaded, returning the swap cost
// (zero when already resident).
func (m *Manager) Require(b Bitstream) Result {
	if m.current == b.Name {
		m.hits++
		return Result{}
	}
	m.current = b.Name
	m.swaps++
	return m.Engine.Transfer(b.Bytes)
}

// Current returns the loaded bitstream name.
func (m *Manager) Current() string { return m.current }

// Stats reports swaps performed and avoided.
func (m *Manager) Stats() (swaps, avoided int) { return m.swaps, m.hits }
