package rpr

import (
	"testing"
	"time"
)

func TestEngineThroughputAtLeast350MBps(t *testing.T) {
	// Paper: "Our RPR engine achieves over 350 MB/s".
	e := NewEngine(DefaultEngineConfig())
	r := e.Transfer(1 << 20)
	if r.Throughput < 350e6 {
		t.Fatalf("throughput = %.1f MB/s, want >= 350", r.Throughput/1e6)
	}
	if r.Throughput > 400e6 {
		t.Fatalf("throughput = %.1f MB/s exceeds the 4 B × 100 MHz ICAP limit", r.Throughput/1e6)
	}
}

func TestSwapUnder3ms(t *testing.T) {
	// Paper: reconfiguration delay < 3 ms for the localization variants.
	e := NewEngine(DefaultEngineConfig())
	for _, b := range []Bitstream{BitstreamFeatureExtract, BitstreamFeatureTrack} {
		r := e.Transfer(b.Bytes)
		if r.Duration >= 3*time.Millisecond {
			t.Fatalf("%s swap = %v, want < 3 ms", b.Name, r.Duration)
		}
	}
}

func TestSwapEnergyAbout2mJ(t *testing.T) {
	// Paper: ~2.1 mJ per reconfiguration.
	e := NewEngine(DefaultEngineConfig())
	r := e.Transfer(BitstreamFeatureExtract.Bytes)
	if r.EnergyJ < 0.5e-3 || r.EnergyJ > 5e-3 {
		t.Fatalf("energy = %v J, want ~2 mJ", r.EnergyJ)
	}
}

func TestCPUDrivenIsOrdersOfMagnitudeSlower(t *testing.T) {
	// Paper: stock CPU-mediated path runs at ~300 KB/s — about 1000×
	// slower than the engine.
	e := NewEngine(DefaultEngineConfig())
	cpu := DefaultCPUDriven()
	bytes := 1 << 20
	re := e.Transfer(bytes)
	rc := cpu.Transfer(bytes)
	ratio := rc.Duration.Seconds() / re.Duration.Seconds()
	if ratio < 500 {
		t.Fatalf("CPU/engine slowdown = %.0fx, want >= 500x", ratio)
	}
	if rc.Duration < 3*time.Second {
		t.Fatalf("CPU path for 1 MB = %v, want seconds", rc.Duration)
	}
}

func TestTransferExactByteCount(t *testing.T) {
	e := NewEngine(DefaultEngineConfig())
	for _, n := range []int{1, 7, 128, 4096, 100_001} {
		r := e.Transfer(n)
		if r.Bytes != n {
			t.Fatalf("bytes = %d, want %d", r.Bytes, n)
		}
		if r.Cycles <= 0 || r.Duration <= 0 {
			t.Fatalf("degenerate result for n=%d: %+v", n, r)
		}
	}
}

func TestFIFODepthMatters(t *testing.T) {
	// A 128-byte FIFO is "sufficient" (paper): a tiny FIFO stalls the
	// ICAP during burst handshakes and loses throughput.
	small := DefaultEngineConfig()
	small.FIFOBytes = 8
	rSmall := NewEngine(small).Transfer(1 << 18)
	rBig := NewEngine(DefaultEngineConfig()).Transfer(1 << 18)
	if rSmall.Throughput >= rBig.Throughput {
		t.Fatalf("small FIFO (%.0f MB/s) should underperform 128 B FIFO (%.0f MB/s)",
			rSmall.Throughput/1e6, rBig.Throughput/1e6)
	}
}

func TestEngineStatsAccumulate(t *testing.T) {
	e := NewEngine(DefaultEngineConfig())
	e.Transfer(1000)
	e.Transfer(2000)
	swaps, total, energy := e.Stats()
	if swaps != 2 || total <= 0 || energy <= 0 {
		t.Fatalf("stats = %d %v %v", swaps, total, energy)
	}
}

func TestManagerSwapsOnlyOnChange(t *testing.T) {
	m := NewManager()
	r1 := m.Require(BitstreamFeatureExtract)
	if r1.Bytes == 0 {
		t.Fatal("first require must transfer")
	}
	r2 := m.Require(BitstreamFeatureExtract)
	if r2.Bytes != 0 {
		t.Fatal("repeat require must be free")
	}
	r3 := m.Require(BitstreamFeatureTrack)
	if r3.Bytes == 0 {
		t.Fatal("variant change must transfer")
	}
	swaps, avoided := m.Stats()
	if swaps != 2 || avoided != 1 {
		t.Fatalf("swaps=%d avoided=%d", swaps, avoided)
	}
	if m.Current() != "feature-track" {
		t.Fatalf("current = %s", m.Current())
	}
}

// TestManagerScriptedSequence drives the manager through a deterministic
// keyframe-style schedule and pins the exact swap accounting the online
// scheduler's NoteSwap charging depends on: every repeat Require is free
// (zero-duration Result, counted as avoided, never as a swap), every variant
// change transfers, and two managers fed the same script produce identical
// cumulative stats.
func TestManagerScriptedSequence(t *testing.T) {
	script := func(m *Manager) (swapTotal time.Duration) {
		// K T T T K T T K K T — a plausible extract/track schedule.
		seq := []Bitstream{
			BitstreamFeatureExtract, BitstreamFeatureTrack, BitstreamFeatureTrack,
			BitstreamFeatureTrack, BitstreamFeatureExtract, BitstreamFeatureTrack,
			BitstreamFeatureTrack, BitstreamFeatureExtract, BitstreamFeatureExtract,
			BitstreamFeatureTrack,
		}
		for i, b := range seq {
			r := m.Require(b)
			if m.Current() != b.Name {
				t.Fatalf("step %d: current = %s, want %s", i, m.Current(), b.Name)
			}
			if i > 0 && seq[i-1].Name == b.Name {
				if r.Duration != 0 || r.Bytes != 0 {
					t.Fatalf("step %d: repeat require of %s cost %v (%d bytes), want free",
						i, b.Name, r.Duration, r.Bytes)
				}
				continue
			}
			if r.Duration <= 0 {
				t.Fatalf("step %d: variant change to %s was free", i, b.Name)
			}
			swapTotal += r.Duration
		}
		return swapTotal
	}

	m1, m2 := NewManager(), NewManager()
	t1, t2 := script(m1), script(m2)
	s1, a1 := m1.Stats()
	if s1 != 6 || a1 != 4 {
		t.Fatalf("swaps=%d avoided=%d, want 6 swaps and 4 avoided", s1, a1)
	}
	s2, a2 := m2.Stats()
	if s1 != s2 || a1 != a2 || t1 != t2 {
		t.Fatalf("scripted runs diverged: (%d,%d,%v) vs (%d,%d,%v)", s1, a1, t1, s2, a2, t2)
	}
	eSwaps, eTotal, _ := m1.Engine.Stats()
	if eSwaps != s1 || eTotal != t1 {
		t.Fatalf("engine stats (%d, %v) disagree with manager accounting (%d, %v)",
			eSwaps, eTotal, s1, t1)
	}
}

func TestEngineResourceFootprint(t *testing.T) {
	r := EngineResources()
	if r.LUTs > 500 || r.FFs > 500 {
		t.Fatalf("engine too big: %+v (paper: ~400/400)", r)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(EngineConfig{})
}

func BenchmarkEngineTransfer1MB(b *testing.B) {
	e := NewEngine(DefaultEngineConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Transfer(1 << 20)
	}
}
