package fusion

import (
	"math"
	"time"

	"sov/internal/mathx"
	"sov/internal/sensors"
)

// GPSVIO is the Sec. VI-B GPS-VIO hybrid, implemented exactly as the paper
// describes the control flow:
//
//   - when the GNSS signal is strong, the GNSS updates are directly used as
//     the vehicle's current position and fed to planning;
//   - meanwhile the GNSS signal corrects the VIO errors (here: the estimated
//     odometry-frame offset) via a small EKF;
//   - when GNSS is lost (tunnels, multipath), the corrected VIO results
//     provide position updates.
//
// The filter state is the 2-D offset between the VIO odometry frame and the
// global frame; the EKF update is a handful of scalar operations — the
// paper measures ~1 ms against 24 ms for the VIO front-end itself.
type GPSVIO struct {
	// offset is the estimated (global - odometry) translation.
	offset mathx.Vec2
	// p is the offset covariance (isotropic scalar for the 2-D offset).
	p float64
	// q is the process noise accounting for continuing VIO drift.
	q float64
	// r is the GPS measurement noise variance.
	r float64

	lastGPS      time.Duration
	gpsAvailable bool
	updates      int
}

// NewGPSVIO returns a fusion filter with the deployed noise settings.
func NewGPSVIO() *GPSVIO {
	return &GPSVIO{p: 25, q: 0.02, r: 0.25}
}

// Update ingests the current VIO position estimate and an optional GPS fix
// and returns the fused global position.
func (g *GPSVIO) Update(t time.Duration, vioPos mathx.Vec2, fix sensors.GPSFix) mathx.Vec2 {
	// VIO keeps drifting while we are not corrected; inflate.
	g.p += g.q
	if fix.Valid {
		g.updates++
		g.gpsAvailable = true
		g.lastGPS = t
		// Innovation: GPS says the global position is fix.Pos, VIO says
		// odometry position + offset.
		resid := fix.Pos.Sub(vioPos.Add(g.offset))
		k := g.p / (g.p + g.r)
		g.offset = g.offset.Add(resid.Scale(k))
		g.p *= 1 - k
		// Strong GNSS: use it directly as the position.
		return fix.Pos
	}
	g.gpsAvailable = false
	// GNSS unavailable: corrected VIO carries the position.
	return vioPos.Add(g.offset)
}

// Offset returns the current odometry-to-global offset estimate.
func (g *GPSVIO) Offset() mathx.Vec2 { return g.offset }

// Healthy reports whether the offset has been corrected at least once.
func (g *GPSVIO) Healthy() bool { return g.updates > 0 }

// Uncertainty returns the offset standard deviation in meters.
func (g *GPSVIO) Uncertainty() float64 {
	if g.p <= 0 {
		return 0
	}
	return math.Sqrt(g.p)
}
