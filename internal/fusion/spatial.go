// Package fusion implements the "augmenting computing with sensors"
// case studies of Sec. VI-B: spatial synchronization, which matches objects
// detected by vision with objects tracked by radar (replacing the
// compute-heavy KCF visual tracker), and a lightweight EKF that fuses GPS
// fixes with VIO odometry (replacing compute-heavy drift-correction
// algorithms). Both run in ~1 ms — one to two orders of magnitude cheaper
// than the compute they displace.
package fusion

import (
	"sort"

	"sov/internal/detect"
	"sov/internal/mathx"
	"sov/internal/track"
)

// Match pairs a vision detection with a radar track.
type Match struct {
	Detection detect.Object
	Track     track.RadarTrack
	// Distance is the matching cost (meters in the vehicle frame).
	Distance float64
}

// SpatialSyncConfig tunes the matcher.
type SpatialSyncConfig struct {
	// MaxDistance gates a pairing, in meters after projection.
	MaxDistance float64
	// RadarMount is the radar's position offset in the vehicle frame
	// (the projection from radar coordinates to camera coordinates).
	RadarMount mathx.Vec2
	// CameraMount is the camera's position offset in the vehicle frame.
	CameraMount mathx.Vec2
}

// DefaultSpatialSyncConfig places the forward radar on the bumper and the
// stereo camera at the windshield.
func DefaultSpatialSyncConfig() SpatialSyncConfig {
	return SpatialSyncConfig{
		MaxDistance: 1.5,
		RadarMount:  mathx.Vec2{X: 2.0},
		CameraMount: mathx.Vec2{X: 0.8},
	}
}

// SpatialSync projects radar tracks into the camera frame and greedily
// matches them with vision detections by Euclidean distance (smallest cost
// first, each side used at most once). It returns the matches plus the
// unmatched leftovers from both sides. The entire operation is a few
// hundred arithmetic operations — the paper measures ~1 ms on the CPU,
// about 100× cheaper than running KCF.
func SpatialSync(cfg SpatialSyncConfig, dets []detect.Object, tracks []track.RadarTrack) (matches []Match, unmatchedDets []detect.Object, unmatchedTracks []track.RadarTrack) {
	type cand struct {
		di, ti int
		d      float64
	}
	var cands []cand
	for di, d := range dets {
		// Detection position is camera-relative; shift to vehicle frame.
		dPos := d.Pos.Add(cfg.CameraMount)
		for ti, tr := range tracks {
			// Track position is radar-relative; shift to vehicle frame.
			tPos := tr.Pos.Add(cfg.RadarMount)
			dist := dPos.DistTo(tPos)
			if dist <= cfg.MaxDistance {
				cands = append(cands, cand{di: di, ti: ti, d: dist})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	usedD := make([]bool, len(dets))
	usedT := make([]bool, len(tracks))
	for _, c := range cands {
		if usedD[c.di] || usedT[c.ti] {
			continue
		}
		usedD[c.di] = true
		usedT[c.ti] = true
		matches = append(matches, Match{Detection: dets[c.di], Track: tracks[c.ti], Distance: c.d})
	}
	for i, d := range dets {
		if !usedD[i] {
			unmatchedDets = append(unmatchedDets, d)
		}
	}
	for i, tr := range tracks {
		if !usedT[i] {
			unmatchedTracks = append(unmatchedTracks, tr)
		}
	}
	return matches, unmatchedDets, unmatchedTracks
}

// FusedObject is the perception output after spatial synchronization: the
// vision detection's class and position with the radar track's velocity.
type FusedObject struct {
	Object detect.Object
	// Velocity is the radar-derived vehicle-frame velocity — the quantity
	// vision-only pipelines would need KCF across frames to estimate.
	Velocity mathx.Vec2
	// FromRadar reports whether velocity came from radar (true) or had to
	// fall back to vision tracking (false).
	FromRadar bool
}

// FuseAll combines matches and leftovers into the perception output list:
// matched objects carry radar velocity; unmatched detections fall back to
// vision (velocity unknown, flagged for the KCF fallback path).
func FuseAll(matches []Match, unmatchedDets []detect.Object) []FusedObject {
	out := make([]FusedObject, 0, len(matches)+len(unmatchedDets))
	for _, m := range matches {
		out = append(out, FusedObject{Object: m.Detection, Velocity: m.Track.Vel, FromRadar: true})
	}
	for _, d := range unmatchedDets {
		out = append(out, FusedObject{Object: d})
	}
	return out
}

// ClosingSpeed returns the component of the fused object's velocity toward
// the vehicle (positive = approaching), used by collision checks.
func (f FusedObject) ClosingSpeed() float64 {
	r := f.Object.Pos.Norm()
	if r == 0 {
		return 0
	}
	los := f.Object.Pos.Scale(1 / r)
	return -f.Velocity.Dot(los)
}
