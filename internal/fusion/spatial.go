// Package fusion implements the "augmenting computing with sensors"
// case studies of Sec. VI-B: spatial synchronization, which matches objects
// detected by vision with objects tracked by radar (replacing the
// compute-heavy KCF visual tracker), and a lightweight EKF that fuses GPS
// fixes with VIO odometry (replacing compute-heavy drift-correction
// algorithms). Both run in ~1 ms — one to two orders of magnitude cheaper
// than the compute they displace.
package fusion

import (
	"sort"

	"sov/internal/detect"
	"sov/internal/mathx"
	"sov/internal/track"
)

// Match pairs a vision detection with a radar track.
type Match struct {
	Detection detect.Object
	Track     track.RadarTrack
	// Distance is the matching cost (meters in the vehicle frame).
	Distance float64
}

// SpatialSyncConfig tunes the matcher.
type SpatialSyncConfig struct {
	// MaxDistance gates a pairing, in meters after projection.
	MaxDistance float64
	// RadarMount is the radar's position offset in the vehicle frame
	// (the projection from radar coordinates to camera coordinates).
	RadarMount mathx.Vec2
	// CameraMount is the camera's position offset in the vehicle frame.
	CameraMount mathx.Vec2
}

// DefaultSpatialSyncConfig places the forward radar on the bumper and the
// stereo camera at the windshield.
func DefaultSpatialSyncConfig() SpatialSyncConfig {
	return SpatialSyncConfig{
		MaxDistance: 1.5,
		RadarMount:  mathx.Vec2{X: 2.0},
		CameraMount: mathx.Vec2{X: 0.8},
	}
}

// SpatialSync projects radar tracks into the camera frame and greedily
// matches them with vision detections by Euclidean distance (smallest cost
// first, each side used at most once). It returns the matches plus the
// unmatched leftovers from both sides. The entire operation is a few
// hundred arithmetic operations — the paper measures ~1 ms on the CPU,
// about 100× cheaper than running KCF.
func SpatialSync(cfg SpatialSyncConfig, dets []detect.Object, tracks []track.RadarTrack) (matches []Match, unmatchedDets []detect.Object, unmatchedTracks []track.RadarTrack) {
	type cand struct {
		di, ti int
		d      float64
	}
	var cands []cand
	for di, d := range dets {
		// Detection position is camera-relative; shift to vehicle frame.
		dPos := d.Pos.Add(cfg.CameraMount)
		for ti, tr := range tracks {
			// Track position is radar-relative; shift to vehicle frame.
			tPos := tr.Pos.Add(cfg.RadarMount)
			dist := dPos.DistTo(tPos)
			if dist <= cfg.MaxDistance {
				cands = append(cands, cand{di: di, ti: ti, d: dist})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	usedD := make([]bool, len(dets))
	usedT := make([]bool, len(tracks))
	for _, c := range cands {
		if usedD[c.di] || usedT[c.ti] {
			continue
		}
		usedD[c.di] = true
		usedT[c.ti] = true
		matches = append(matches, Match{Detection: dets[c.di], Track: tracks[c.ti], Distance: c.d})
	}
	for i, d := range dets {
		if !usedD[i] {
			unmatchedDets = append(unmatchedDets, d)
		}
	}
	for i, tr := range tracks {
		if !usedT[i] {
			unmatchedTracks = append(unmatchedTracks, tr)
		}
	}
	return matches, unmatchedDets, unmatchedTracks
}

type syncCand struct {
	di, ti int
	d      float64
}

// SyncScratch holds the matcher's per-frame working buffers so a control
// loop can run spatial synchronization every cycle without allocating.
// The slices returned by SpatialSyncInto alias these buffers and stay
// valid until the next call with the same scratch.
type SyncScratch struct {
	cands           []syncCand
	usedD, usedT    []bool
	matches         []Match
	unmatchedDets   []detect.Object
	unmatchedTracks []track.RadarTrack
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		//sovlint:ignore hotalloc grow-on-demand scratch; capacity sticks to the high-water mark
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// SpatialSyncInto is the reusing variant of SpatialSync. The candidate sort
// is an insertion sort on the matching cost — deterministic (and stable,
// which sort.Slice does not guarantee on ties), so results are reproducible
// bit-for-bit across runs and worker counts.
//
//sov:hotpath
func (sc *SyncScratch) SpatialSyncInto(cfg SpatialSyncConfig, dets []detect.Object, tracks []track.RadarTrack) (matches []Match, unmatchedDets []detect.Object, unmatchedTracks []track.RadarTrack) {
	cands := sc.cands[:0]
	for di, d := range dets {
		// Detection position is camera-relative; shift to vehicle frame.
		dPos := d.Pos.Add(cfg.CameraMount)
		for ti, tr := range tracks {
			// Track position is radar-relative; shift to vehicle frame.
			tPos := tr.Pos.Add(cfg.RadarMount)
			dist := dPos.DistTo(tPos)
			if dist <= cfg.MaxDistance {
				cands = append(cands, syncCand{di: di, ti: ti, d: dist})
			}
		}
	}
	sc.cands = cands
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i
		for j > 0 && cands[j-1].d > c.d {
			cands[j] = cands[j-1]
			j--
		}
		cands[j] = c
	}
	sc.usedD = growBools(sc.usedD, len(dets))
	sc.usedT = growBools(sc.usedT, len(tracks))
	sc.matches = sc.matches[:0]
	sc.unmatchedDets = sc.unmatchedDets[:0]
	sc.unmatchedTracks = sc.unmatchedTracks[:0]
	for _, c := range cands {
		if sc.usedD[c.di] || sc.usedT[c.ti] {
			continue
		}
		sc.usedD[c.di] = true
		sc.usedT[c.ti] = true
		sc.matches = append(sc.matches, Match{Detection: dets[c.di], Track: tracks[c.ti], Distance: c.d})
	}
	for i, d := range dets {
		if !sc.usedD[i] {
			sc.unmatchedDets = append(sc.unmatchedDets, d)
		}
	}
	for i, tr := range tracks {
		if !sc.usedT[i] {
			sc.unmatchedTracks = append(sc.unmatchedTracks, tr)
		}
	}
	return sc.matches, sc.unmatchedDets, sc.unmatchedTracks
}

// FusedObject is the perception output after spatial synchronization: the
// vision detection's class and position with the radar track's velocity.
type FusedObject struct {
	Object detect.Object
	// Velocity is the radar-derived vehicle-frame velocity — the quantity
	// vision-only pipelines would need KCF across frames to estimate.
	Velocity mathx.Vec2
	// FromRadar reports whether velocity came from radar (true) or had to
	// fall back to vision tracking (false).
	FromRadar bool
}

// FuseAll combines matches and leftovers into the perception output list:
// matched objects carry radar velocity; unmatched detections fall back to
// vision (velocity unknown, flagged for the KCF fallback path).
func FuseAll(matches []Match, unmatchedDets []detect.Object) []FusedObject {
	return FuseAllInto(make([]FusedObject, 0, len(matches)+len(unmatchedDets)), matches, unmatchedDets)
}

// FuseAllInto appends the perception output to dst (reusing its capacity)
// and returns it — the zero-allocation variant of FuseAll.
//
//sov:hotpath
func FuseAllInto(dst []FusedObject, matches []Match, unmatchedDets []detect.Object) []FusedObject {
	for _, m := range matches {
		dst = append(dst, FusedObject{Object: m.Detection, Velocity: m.Track.Vel, FromRadar: true})
	}
	for _, d := range unmatchedDets {
		dst = append(dst, FusedObject{Object: d})
	}
	return dst
}

// ClosingSpeed returns the component of the fused object's velocity toward
// the vehicle (positive = approaching), used by collision checks.
func (f FusedObject) ClosingSpeed() float64 {
	r := f.Object.Pos.Norm()
	if r == 0 {
		return 0
	}
	los := f.Object.Pos.Scale(1 / r)
	return -f.Velocity.Dot(los)
}
