package fusion

import (
	"math"
	"testing"
	"time"

	"sov/internal/detect"
	"sov/internal/mathx"
	"sov/internal/sensors"
	"sov/internal/track"
)

func det(x, y float64, id int) detect.Object {
	return detect.Object{ID: id, Pos: mathx.Vec2{X: x, Y: y}, Range: math.Hypot(x, y)}
}

func rtr(x, y float64, vx, vy float64, id int) track.RadarTrack {
	return track.RadarTrack{ID: id, Pos: mathx.Vec2{X: x, Y: y}, Vel: mathx.Vec2{X: vx, Y: vy}}
}

func TestSpatialSyncMatchesProjectedTargets(t *testing.T) {
	cfg := DefaultSpatialSyncConfig()
	// Vehicle-frame target at (12, 1): camera sees it at (11.2, 1),
	// radar at (10, 1) in their own mount frames.
	dets := []detect.Object{det(11.2, 1, 1)}
	tracks := []track.RadarTrack{rtr(10, 1, -2, 0, 5)}
	matches, ud, ut := SpatialSync(cfg, dets, tracks)
	if len(matches) != 1 || len(ud) != 0 || len(ut) != 0 {
		t.Fatalf("matches=%d ud=%d ut=%d", len(matches), len(ud), len(ut))
	}
	if matches[0].Distance > 0.01 {
		t.Fatalf("projection residual = %v, want ~0", matches[0].Distance)
	}
}

func TestSpatialSyncGreedyUniqueAssignment(t *testing.T) {
	cfg := DefaultSpatialSyncConfig()
	cfg.RadarMount = mathx.Vec2{}
	cfg.CameraMount = mathx.Vec2{}
	// Two detections near one track: only the closest pairs.
	dets := []detect.Object{det(10, 0, 1), det(10.5, 0, 2)}
	tracks := []track.RadarTrack{rtr(10.1, 0, 0, 0, 5)}
	matches, ud, _ := SpatialSync(cfg, dets, tracks)
	if len(matches) != 1 {
		t.Fatalf("matches = %d", len(matches))
	}
	if matches[0].Detection.ID != 1 {
		t.Fatalf("matched det %d, want 1 (closest)", matches[0].Detection.ID)
	}
	if len(ud) != 1 || ud[0].ID != 2 {
		t.Fatalf("unmatched = %+v", ud)
	}
}

func TestSpatialSyncGateRejectsFar(t *testing.T) {
	cfg := DefaultSpatialSyncConfig()
	cfg.RadarMount = mathx.Vec2{}
	cfg.CameraMount = mathx.Vec2{}
	dets := []detect.Object{det(10, 0, 1)}
	tracks := []track.RadarTrack{rtr(10, 5, 0, 0, 5)}
	matches, ud, ut := SpatialSync(cfg, dets, tracks)
	if len(matches) != 0 || len(ud) != 1 || len(ut) != 1 {
		t.Fatalf("gate failed: m=%d ud=%d ut=%d", len(matches), len(ud), len(ut))
	}
}

func TestFuseAllVelocityTransfer(t *testing.T) {
	cfg := DefaultSpatialSyncConfig()
	cfg.RadarMount = mathx.Vec2{}
	cfg.CameraMount = mathx.Vec2{}
	dets := []detect.Object{det(10, 0, 1), det(20, 3, 2)}
	tracks := []track.RadarTrack{rtr(10, 0, -3, 0, 5)}
	m, ud, _ := SpatialSync(cfg, dets, tracks)
	fused := FuseAll(m, ud)
	if len(fused) != 2 {
		t.Fatalf("fused = %d", len(fused))
	}
	var radarObj, visionObj *FusedObject
	for i := range fused {
		if fused[i].FromRadar {
			radarObj = &fused[i]
		} else {
			visionObj = &fused[i]
		}
	}
	if radarObj == nil || visionObj == nil {
		t.Fatalf("fused set wrong: %+v", fused)
	}
	if radarObj.Velocity.X != -3 {
		t.Fatalf("radar velocity not transferred: %v", radarObj.Velocity)
	}
	// Closing speed of an approaching object is positive.
	if radarObj.ClosingSpeed() <= 0 {
		t.Fatalf("closing speed = %v, want > 0", radarObj.ClosingSpeed())
	}
}

func TestClosingSpeedZeroRange(t *testing.T) {
	f := FusedObject{Object: detect.Object{}, Velocity: mathx.Vec2{X: 1}}
	if f.ClosingSpeed() != 0 {
		t.Fatal("zero-range closing speed should be 0")
	}
}

func TestGPSVIODirectPositionWhenAvailable(t *testing.T) {
	g := NewGPSVIO()
	fix := sensors.GPSFix{Pos: mathx.Vec2{X: 100, Y: 50}, Valid: true}
	got := g.Update(0, mathx.Vec2{X: 90, Y: 50}, fix)
	if got != fix.Pos {
		t.Fatalf("fused = %v, want GPS position directly", got)
	}
	if !g.Healthy() {
		t.Fatal("filter should be healthy after a fix")
	}
}

func TestGPSVIOCorrectsDriftDuringOutage(t *testing.T) {
	g := NewGPSVIO()
	// VIO drifted by (10, 0): odometry says (90, 0), truth is (100, 0).
	for i := 0; i < 50; i++ {
		fix := sensors.GPSFix{Pos: mathx.Vec2{X: 100 + float64(i)*0.1, Y: 0}, Valid: true}
		g.Update(time.Duration(i)*100*time.Millisecond, mathx.Vec2{X: 90 + float64(i)*0.1}, fix)
	}
	// Offset should have converged to ~10.
	if math.Abs(g.Offset().X-10) > 0.5 {
		t.Fatalf("offset = %v, want ~10", g.Offset())
	}
	// Outage: fused position = corrected VIO.
	got := g.Update(6*time.Second, mathx.Vec2{X: 95.2}, sensors.GPSFix{Valid: false})
	if math.Abs(got.X-105.2) > 0.5 {
		t.Fatalf("outage position = %v, want corrected VIO ~105.2", got)
	}
}

func TestGPSVIOUncertaintyShrinksWithFixes(t *testing.T) {
	g := NewGPSVIO()
	before := g.Uncertainty()
	for i := 0; i < 10; i++ {
		g.Update(time.Duration(i)*100*time.Millisecond, mathx.Vec2{},
			sensors.GPSFix{Pos: mathx.Vec2{}, Valid: true})
	}
	if g.Uncertainty() >= before {
		t.Fatalf("uncertainty did not shrink: %v -> %v", before, g.Uncertainty())
	}
	// And grows again during outage.
	mid := g.Uncertainty()
	for i := 0; i < 100; i++ {
		g.Update(time.Second, mathx.Vec2{}, sensors.GPSFix{Valid: false})
	}
	if g.Uncertainty() <= mid {
		t.Fatal("uncertainty should grow during outage")
	}
}

func TestSpatialSyncOperationCount(t *testing.T) {
	// The paper: spatial synchronization is ~100× cheaper than KCF. The
	// benchmark pair in bench_test.go measures the wall-clock ratio; here
	// we sanity-check it completes instantly on a realistic load.
	cfg := DefaultSpatialSyncConfig()
	var dets []detect.Object
	var tracks []track.RadarTrack
	for i := 0; i < 10; i++ {
		dets = append(dets, det(10+float64(i), float64(i%3), i))
		tracks = append(tracks, rtr(8.8+float64(i), float64(i%3), -1, 0, i))
	}
	start := time.Now()
	for i := 0; i < 1000; i++ {
		SpatialSync(cfg, dets, tracks)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("spatial sync too slow: %v for 1000 iterations", el)
	}
}
