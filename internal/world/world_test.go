package world

import (
	"math"
	"testing"
	"time"

	"sov/internal/mathx"
	"sov/internal/sim"
)

func TestLaneGeometry(t *testing.T) {
	l := Lane{Start: mathx.Vec2{}, End: mathx.Vec2{X: 10}, Width: 3}
	if l.Length() != 10 {
		t.Fatalf("length = %v", l.Length())
	}
	if l.Direction() != (mathx.Vec2{X: 1}) {
		t.Fatalf("direction = %v", l.Direction())
	}
	if got := l.CenterAt(4); got != (mathx.Vec2{X: 4}) {
		t.Fatalf("center = %v", got)
	}
	if got := l.CenterAt(99); got != (mathx.Vec2{X: 10}) {
		t.Fatalf("center clamp = %v", got)
	}
	if off := l.LateralOffset(mathx.Vec2{X: 5, Y: 1.2}); math.Abs(off-1.2) > 1e-12 {
		t.Fatalf("lateral = %v", off)
	}
	if !l.Contains(mathx.Vec2{X: 5, Y: 1.4}) {
		t.Fatal("point inside lane not contained")
	}
	if l.Contains(mathx.Vec2{X: 5, Y: 1.6}) {
		t.Fatal("point outside width contained")
	}
	if l.Contains(mathx.Vec2{X: -1, Y: 0}) {
		t.Fatal("point before start contained")
	}
}

func TestZeroLengthLaneDirection(t *testing.T) {
	l := Lane{Start: mathx.Vec2{X: 1, Y: 1}, End: mathx.Vec2{X: 1, Y: 1}}
	if l.Direction() != (mathx.Vec2{X: 1}) {
		t.Fatal("degenerate lane should return unit X")
	}
}

func TestLinearTrajectoryHoldsBeforeTrigger(t *testing.T) {
	traj := LinearTrajectory(mathx.Vec2{X: 10, Y: -3}, mathx.Vec2{Y: 1.5}, 2*time.Second)
	pos, vel := traj(time.Second)
	if pos != (mathx.Vec2{X: 10, Y: -3}) || vel != (mathx.Vec2{}) {
		t.Fatalf("before trigger: pos=%v vel=%v", pos, vel)
	}
	pos, vel = traj(4 * time.Second)
	if math.Abs(pos.Y-0) > 1e-9 || vel.Y != 1.5 {
		t.Fatalf("after trigger: pos=%v vel=%v", pos, vel)
	}
}

func TestVisibleObstaclesFOVAndRange(t *testing.T) {
	w := &World{}
	w.AddStaticObstacle(mathx.Vec2{X: 10}, 0.5)       // dead ahead
	w.AddStaticObstacle(mathx.Vec2{X: -10}, 0.5)      // behind
	w.AddStaticObstacle(mathx.Vec2{X: 100}, 0.5)      // too far
	w.AddStaticObstacle(mathx.Vec2{X: 5, Y: 20}, 0.5) // wide bearing

	p := Pose{}
	ds := w.VisibleObstacles(p, 0, 50, math.Pi/2)
	if len(ds) != 1 {
		t.Fatalf("visible = %d, want 1", len(ds))
	}
	if ds[0].Range != 10 || math.Abs(ds[0].Bearing) > 1e-12 {
		t.Fatalf("detection = %+v", ds[0])
	}
}

func TestVisibleObstaclesSortedByRange(t *testing.T) {
	w := &World{}
	w.AddStaticObstacle(mathx.Vec2{X: 30}, 0.5)
	w.AddStaticObstacle(mathx.Vec2{X: 10}, 0.5)
	w.AddStaticObstacle(mathx.Vec2{X: 20}, 0.5)
	ds := w.VisibleObstacles(Pose{}, 0, 50, math.Pi)
	for i := 1; i < len(ds); i++ {
		if ds[i].Range < ds[i-1].Range {
			t.Fatalf("not sorted: %v", ds)
		}
	}
	d, ok := w.NearestAhead(Pose{}, 0, 50, math.Pi)
	if !ok || d.Range != 10 {
		t.Fatalf("nearest = %+v ok=%v", d, ok)
	}
}

func TestNearestAheadEmpty(t *testing.T) {
	w := &World{}
	if _, ok := w.NearestAhead(Pose{}, 0, 50, math.Pi); ok {
		t.Fatal("expected no detection in empty world")
	}
}

func TestHeadingRotatesFOV(t *testing.T) {
	w := &World{}
	w.AddStaticObstacle(mathx.Vec2{Y: 10}, 0.5)
	// Facing +X, narrow cone: not visible.
	if _, ok := w.NearestAhead(Pose{}, 0, 50, math.Pi/4); ok {
		t.Fatal("should not see obstacle at +Y facing +X")
	}
	// Facing +Y: visible.
	if _, ok := w.NearestAhead(Pose{Heading: math.Pi / 2}, 0, 50, math.Pi/4); !ok {
		t.Fatal("should see obstacle facing +Y")
	}
}

func TestSceneComplexity(t *testing.T) {
	w := &World{}
	if w.SceneComplexity(Pose{}, 0) != 0 {
		t.Fatal("empty world should be complexity 0")
	}
	for i := 0; i < 10; i++ {
		o := &Obstacle{ID: i, Kind: KindPedestrian, Radius: 0.3,
			Traj: LinearTrajectory(mathx.Vec2{X: float64(5 + i)}, mathx.Vec2{Y: 1}, 0)}
		w.Obstacles = append(w.Obstacles, o)
	}
	if c := w.SceneComplexity(Pose{}, time.Second); c != 1 {
		t.Fatalf("saturated complexity = %v, want 1", c)
	}
}

func TestCutInPedestrian(t *testing.T) {
	rng := sim.NewRNG(1)
	w := NewCorridor(100, rng)
	ped := w.AddCutInPedestrian(30, 5*time.Second, 1.5)
	pos, _ := ped.At(0)
	if pos.Y != -3 {
		t.Fatalf("pedestrian start = %v", pos)
	}
	// After trigger + 2 s the pedestrian is at the lane centerline.
	pos, _ = ped.At(7 * time.Second)
	if math.Abs(pos.Y) > 1e-9 {
		t.Fatalf("pedestrian at t+2 = %v, want y=0", pos)
	}
	if ped.Kind != KindPedestrian || ped.Kind.String() != "pedestrian" {
		t.Fatalf("kind = %v", ped.Kind)
	}
}

func TestCorridorLandmarks(t *testing.T) {
	w := NewCorridor(100, sim.NewRNG(2))
	if len(w.Landmarks) < 20 {
		t.Fatalf("landmarks = %d, want >= 20", len(w.Landmarks))
	}
	vis := w.LandmarksInFOV(Pose{Pos: mathx.Vec2{X: 10}}, 20, math.Pi*0.8)
	if len(vis) == 0 {
		t.Fatal("no landmarks visible mid-corridor")
	}
	for _, i := range vis {
		if w.Landmarks[i].XY().DistTo(mathx.Vec2{X: 10}) > 20 {
			t.Fatal("landmark beyond range returned")
		}
	}
}

func TestGPSOutage(t *testing.T) {
	w := &World{GPSOutages: []TimeWindow{{From: 10 * time.Second, To: 20 * time.Second}}}
	if !w.GPSAvailable(5 * time.Second) {
		t.Fatal("GPS should be available at 5s")
	}
	if w.GPSAvailable(15 * time.Second) {
		t.Fatal("GPS should be out at 15s")
	}
	if !w.GPSAvailable(20 * time.Second) {
		t.Fatal("window is half-open; 20s should be available")
	}
}

func TestFigureEightContinuity(t *testing.T) {
	traj := FigureEight(20, 5.6)
	prev, _ := traj(0)
	for ms := 10; ms < 60000; ms += 10 {
		p, _ := traj(time.Duration(ms) * time.Millisecond)
		if p.Pos.DistTo(prev.Pos) > 0.12 { // 5.6 m/s * 10 ms + slack
			t.Fatalf("discontinuity at %d ms: %v -> %v", ms, prev.Pos, p.Pos)
		}
		prev = p
	}
}

func TestFigureEightYawRateSign(t *testing.T) {
	traj := FigureEight(20, 5.6)
	_, omega0 := traj(0)
	if omega0.Z <= 0 {
		t.Fatalf("first loop should turn left: %v", omega0.Z)
	}
	// One full loop takes 2*pi*r/v ≈ 22.4 s; sample mid second loop.
	_, omega1 := traj(30 * time.Second)
	if omega1.Z >= 0 {
		t.Fatalf("second loop should turn right: %v", omega1.Z)
	}
}

func TestFigureEightPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FigureEight(0, 5)
}

func TestCampusLoop(t *testing.T) {
	w := CampusLoop(80, sim.NewRNG(3))
	if len(w.Lanes) != 4 {
		t.Fatalf("lanes = %d", len(w.Lanes))
	}
	if len(w.Landmarks) < 40 {
		t.Fatalf("landmarks = %d", len(w.Landmarks))
	}
	if len(w.Obstacles) != 1 {
		t.Fatalf("obstacles = %d", len(w.Obstacles))
	}
	total := 0.0
	for _, l := range w.Lanes {
		total += l.Length()
	}
	if math.Abs(total-320) > 1e-9 {
		t.Fatalf("perimeter = %v", total)
	}
}

func TestObstacleKindStrings(t *testing.T) {
	if KindStatic.String() != "static" || KindVehicle.String() != "vehicle" ||
		KindCyclist.String() != "cyclist" || ObstacleKind(99).String() == "" {
		t.Fatal("kind strings wrong")
	}
}

func TestRouteActiveLaneAndProgress(t *testing.T) {
	r := Route{Lanes: []Lane{
		{Start: mathx.Vec2{}, End: mathx.Vec2{X: 80}, Width: 3},
		{Start: mathx.Vec2{X: 80}, End: mathx.Vec2{X: 80, Y: 80}, Width: 3},
	}}
	if got := r.ActiveLane(mathx.Vec2{X: 40, Y: 0.5}); got != 0 {
		t.Fatalf("mid leg 1 active = %d", got)
	}
	if got := r.ActiveLane(mathx.Vec2{X: 80.2, Y: 30}); got != 1 {
		t.Fatalf("mid leg 2 active = %d", got)
	}
	// Corner tie goes to the later leg (handover).
	if got := r.ActiveLane(mathx.Vec2{X: 80, Y: 0}); got != 1 {
		t.Fatalf("corner active = %d, want handover to 1", got)
	}
	if p := r.Progress(0, mathx.Vec2{X: 40}); math.Abs(p-40) > 1e-9 {
		t.Fatalf("progress leg1 = %v", p)
	}
	if p := r.Progress(1, mathx.Vec2{X: 80, Y: 30}); math.Abs(p-110) > 1e-9 {
		t.Fatalf("progress leg2 = %v", p)
	}
	if r.TotalLength() != 160 {
		t.Fatalf("total = %v", r.TotalLength())
	}
}

func TestRouteProgressMonotoneAlongPath(t *testing.T) {
	r := Route{Lanes: CampusLoop(80, sim.NewRNG(1)).Lanes}
	prev := -1.0
	// Walk the loop's first three legs sampling progress.
	samples := []mathx.Vec2{
		{X: 10}, {X: 40}, {X: 75},
		{X: 80, Y: 10}, {X: 80, Y: 40}, {X: 80, Y: 75},
		{X: 70, Y: 80}, {X: 40, Y: 80},
	}
	for _, p := range samples {
		prog := r.Progress(r.ActiveLane(p), p)
		if prog <= prev {
			t.Fatalf("progress not monotone at %v: %v after %v", p, prog, prev)
		}
		prev = prog
	}
}
