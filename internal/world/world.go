// Package world provides the synthetic environment the SoV operates in:
// lanes, static and dynamic obstacles (with trajectories), and the 3-D
// landmark fields observed by the cameras. It substitutes for the physical
// deployment sites (Fishers, Nara/Fukuoka, Shenzhen, Fribourg) and supplies
// the ground truth every sensor model samples.
package world

import (
	"fmt"
	"math"
	"time"

	"sov/internal/mathx"
	"sov/internal/sim"
)

// ObstacleKind classifies obstacles for the detection/classification models.
type ObstacleKind int

// Obstacle kinds seen in micromobility deployments.
const (
	KindStatic ObstacleKind = iota
	KindPedestrian
	KindCyclist
	KindVehicle
)

// String implements fmt.Stringer.
func (k ObstacleKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindPedestrian:
		return "pedestrian"
	case KindCyclist:
		return "cyclist"
	case KindVehicle:
		return "vehicle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Trajectory gives an obstacle's position and velocity at time t.
type Trajectory func(t time.Duration) (pos, vel mathx.Vec2)

// StaticTrajectory pins an obstacle at pos.
func StaticTrajectory(pos mathx.Vec2) Trajectory {
	return func(time.Duration) (mathx.Vec2, mathx.Vec2) { return pos, mathx.Vec2{} }
}

// LinearTrajectory moves from start with constant velocity, starting at t0
// (the obstacle stays at start before t0 — a pedestrian stepping off a curb).
func LinearTrajectory(start, vel mathx.Vec2, t0 time.Duration) Trajectory {
	return func(t time.Duration) (mathx.Vec2, mathx.Vec2) {
		if t < t0 {
			return start, mathx.Vec2{}
		}
		dt := (t - t0).Seconds()
		return start.Add(vel.Scale(dt)), vel
	}
}

// Obstacle is one object in the world.
type Obstacle struct {
	ID     int
	Kind   ObstacleKind
	Radius float64 // meters, footprint radius
	Height float64 // meters (for rendering / classification)
	Traj   Trajectory
}

// At samples the trajectory.
func (o *Obstacle) At(t time.Duration) (pos, vel mathx.Vec2) { return o.Traj(t) }

// Lane is a straight lane segment with a width (the paper: 1–3 m lanes,
// lane-granularity maneuvering).
type Lane struct {
	Start, End mathx.Vec2
	Width      float64
}

// Length returns the centerline length.
func (l Lane) Length() float64 { return l.Start.DistTo(l.End) }

// Direction returns the unit direction of travel.
func (l Lane) Direction() mathx.Vec2 {
	d := l.End.Sub(l.Start)
	n := d.Norm()
	if n == 0 {
		return mathx.Vec2{X: 1}
	}
	return d.Scale(1 / n)
}

// CenterAt returns the centerline point at arclength s (clamped).
func (l Lane) CenterAt(s float64) mathx.Vec2 {
	s = mathx.Clamp(s, 0, l.Length())
	return l.Start.Add(l.Direction().Scale(s))
}

// LateralOffset returns the signed lateral distance of p from the
// centerline (positive left of travel direction).
func (l Lane) LateralOffset(p mathx.Vec2) float64 {
	d := l.Direction()
	rel := p.Sub(l.Start)
	return -d.Y*rel.X + d.X*rel.Y
}

// Contains reports whether p lies within the lane polygon.
func (l Lane) Contains(p mathx.Vec2) bool {
	d := l.Direction()
	rel := p.Sub(l.Start)
	along := rel.Dot(d)
	if along < 0 || along > l.Length() {
		return false
	}
	return math.Abs(l.LateralOffset(p)) <= l.Width/2
}

// World is the complete synthetic environment.
type World struct {
	Lanes     []Lane
	Obstacles []*Obstacle
	// Landmarks are the 3-D visual features VIO localizes against.
	Landmarks []mathx.Vec3
	// GPSOutages are time windows with no usable GNSS signal (tunnels,
	// multipath canyons) for the GPS-VIO fusion case study.
	GPSOutages []TimeWindow
}

// TimeWindow is a half-open virtual-time interval [From, To).
type TimeWindow struct {
	From, To time.Duration
}

// Contains reports whether t falls inside the window.
func (w TimeWindow) Contains(t time.Duration) bool { return t >= w.From && t < w.To }

// GPSAvailable reports whether GNSS is usable at time t.
func (w *World) GPSAvailable(t time.Duration) bool {
	for _, o := range w.GPSOutages {
		if o.Contains(t) {
			return false
		}
	}
	return true
}

// Route is an ordered sequence of lanes the vehicle follows (the
// pre-constructed OSM-style lane map's path for a trip).
type Route struct {
	Lanes []Lane
}

// distToLane returns the point-to-segment distance to a lane's centerline.
func distToLane(l Lane, p mathx.Vec2) float64 {
	d := l.Direction()
	along := mathx.Clamp(p.Sub(l.Start).Dot(d), 0, l.Length())
	return p.DistTo(l.Start.Add(d.Scale(along)))
}

// ActiveLane returns the index of the lane the position is on: the nearest
// lane by centerline distance, with later lanes winning ties so that
// corner transitions hand over to the next leg.
func (r Route) ActiveLane(p mathx.Vec2) int {
	best, bestD := 0, math.Inf(1)
	for i, l := range r.Lanes {
		if d := distToLane(l, p); d <= bestD {
			bestD = d
			best = i
		}
	}
	return best
}

// Progress returns the cumulative arclength traveled along the route for a
// position on (or near) lane index i.
func (r Route) Progress(i int, p mathx.Vec2) float64 {
	s := 0.0
	for j := 0; j < i && j < len(r.Lanes); j++ {
		s += r.Lanes[j].Length()
	}
	if i < len(r.Lanes) {
		l := r.Lanes[i]
		s += mathx.Clamp(p.Sub(l.Start).Dot(l.Direction()), 0, l.Length())
	}
	return s
}

// TotalLength returns the route length.
func (r Route) TotalLength() float64 {
	s := 0.0
	for _, l := range r.Lanes {
		s += l.Length()
	}
	return s
}

// Pose is an observer pose on the ground plane.
type Pose struct {
	Pos     mathx.Vec2
	Heading float64
}

// Detection is a ground-truth view of one obstacle from a pose.
type Detection struct {
	Obstacle *Obstacle
	Pos      mathx.Vec2 // world frame
	Vel      mathx.Vec2 // world frame
	Range    float64    // meters from observer
	Bearing  float64    // radians relative to observer heading
}

// VisibleObstacles returns the obstacles within maxRange and ±fov/2 of the
// pose's heading, nearest first.
func (w *World) VisibleObstacles(p Pose, t time.Duration, maxRange, fov float64) []Detection {
	return w.VisibleObstaclesInto(nil, p, t, maxRange, fov)
}

// VisibleObstaclesInto is VisibleObstacles appending into dst (reusing its
// capacity) — the zero-allocation variant for per-sensor scratch buffers.
// The world itself holds no scratch so concurrent sensors can each bring
// their own.
//
//sov:hotpath
func (w *World) VisibleObstaclesInto(dst []Detection, p Pose, t time.Duration, maxRange, fov float64) []Detection {
	out := dst
	for _, o := range w.Obstacles {
		pos, vel := o.At(t)
		rel := pos.Sub(p.Pos)
		r := rel.Norm()
		if r > maxRange || r == 0 {
			continue
		}
		bearing := mathx.WrapAngle(rel.Angle() - p.Heading)
		if math.Abs(bearing) > fov/2 {
			continue
		}
		out = append(out, Detection{Obstacle: o, Pos: pos, Vel: vel, Range: r, Bearing: bearing})
	}
	// Insertion sort by range; obstacle counts are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Range < out[j-1].Range; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NearestAhead returns the nearest visible obstacle within a narrow
// forward cone (the reactive path's radar/sonar view). ok is false when
// nothing is in view. It tracks the minimum inline — no candidate list —
// because the reactive path polls it tens of times per control cycle.
//
//sov:hotpath
func (w *World) NearestAhead(p Pose, t time.Duration, maxRange, fov float64) (Detection, bool) {
	var best Detection
	found := false
	for _, o := range w.Obstacles {
		pos, vel := o.At(t)
		rel := pos.Sub(p.Pos)
		r := rel.Norm()
		if r > maxRange || r == 0 {
			continue
		}
		bearing := mathx.WrapAngle(rel.Angle() - p.Heading)
		if math.Abs(bearing) > fov/2 {
			continue
		}
		if !found || r < best.Range {
			best = Detection{Obstacle: o, Pos: pos, Vel: vel, Range: r, Bearing: bearing}
			found = true
		}
	}
	return best, found
}

// SceneComplexity returns a [0,1] score of how dynamic the scene is around
// the pose: the fraction of a saturation count of moving objects in view.
// The latency models use it (dynamic scenes extract new features in every
// frame, slowing localization — Sec. V-C).
func (w *World) SceneComplexity(p Pose, t time.Duration) float64 {
	const saturation = 6.0
	const maxRange, fov = 40.0, math.Pi
	moving := 0
	for _, o := range w.Obstacles {
		pos, vel := o.At(t)
		rel := pos.Sub(p.Pos)
		r := rel.Norm()
		if r > maxRange || r == 0 {
			continue
		}
		if math.Abs(mathx.WrapAngle(rel.Angle()-p.Heading)) > fov/2 {
			continue
		}
		if vel.Norm() > 0.2 {
			moving++
		}
	}
	return mathx.Clamp(float64(moving)/saturation, 0, 1)
}

// LandmarksInFOV returns the indices of landmarks visible from the pose
// (camera at 1.2 m height is approximated by ignoring elevation limits)
// within maxRange and the horizontal field of view.
func (w *World) LandmarksInFOV(p Pose, maxRange, fov float64) []int {
	var out []int
	for i, lm := range w.Landmarks {
		rel := lm.XY().Sub(p.Pos)
		r := rel.Norm()
		if r > maxRange || r < 0.5 {
			continue
		}
		if math.Abs(mathx.WrapAngle(rel.Angle()-p.Heading)) > fov/2 {
			continue
		}
		out = append(out, i)
	}
	return out
}

// NewCorridor builds a straight two-lane corridor world of the given length
// with landmark posts alternating on both sides, suitable for VIO runs.
func NewCorridor(length float64, rng *sim.RNG) *World {
	w := &World{
		Lanes: []Lane{{Start: mathx.Vec2{}, End: mathx.Vec2{X: length}, Width: 3}},
	}
	for x := 2.0; x < length; x += 3 {
		side := 4.0
		if int(x/3)%2 == 0 {
			side = -4.0
		}
		w.Landmarks = append(w.Landmarks,
			mathx.Vec3{X: x + rng.Uniform(-0.5, 0.5), Y: side + rng.Uniform(-1, 1), Z: rng.Uniform(0.5, 3)})
	}
	return w
}

// AddCutInPedestrian places a pedestrian that steps into the lane at
// triggerTime, crossing at crossSpeed m/s, positioned atX meters down the
// corridor. Returns the obstacle for inspection.
func (w *World) AddCutInPedestrian(atX float64, triggerTime time.Duration, crossSpeed float64) *Obstacle {
	o := &Obstacle{
		ID:     len(w.Obstacles) + 1,
		Kind:   KindPedestrian,
		Radius: 0.3,
		Height: 1.7,
		Traj:   LinearTrajectory(mathx.Vec2{X: atX, Y: -3}, mathx.Vec2{Y: crossSpeed}, triggerTime),
	}
	w.Obstacles = append(w.Obstacles, o)
	return o
}

// SuddenObstacleRadius is the footprint of the sudden obstacle: a vehicle
// pulled across the lane, too wide to steer around inside the corridor —
// the avoidance outcome then depends purely on distance vs. reaction
// latency, matching Eq. 1's braking-only analysis.
const SuddenObstacleRadius = 2.0

// AddSuddenObstacle places an obstacle that materializes at pos at
// triggerTime (before that it sits far out of any sensor's range) — the
// worst-case "new event sensed" of the Eq. 1 latency analysis.
func (w *World) AddSuddenObstacle(pos mathx.Vec2, triggerTime time.Duration) *Obstacle {
	hidden := mathx.Vec2{X: pos.X, Y: -1000}
	o := &Obstacle{
		ID:     len(w.Obstacles) + 1,
		Kind:   KindVehicle,
		Radius: SuddenObstacleRadius,
		Height: 1.5,
		Traj: func(t time.Duration) (mathx.Vec2, mathx.Vec2) {
			if t < triggerTime {
				return hidden, mathx.Vec2{}
			}
			return pos, mathx.Vec2{}
		},
	}
	w.Obstacles = append(w.Obstacles, o)
	return o
}

// AddStaticObstacle places a static obstacle.
func (w *World) AddStaticObstacle(pos mathx.Vec2, radius float64) *Obstacle {
	o := &Obstacle{ID: len(w.Obstacles) + 1, Kind: KindStatic, Radius: radius, Height: 1.0,
		Traj: StaticTrajectory(pos)}
	w.Obstacles = append(w.Obstacles, o)
	return o
}

// FigureEight returns a pose trajectory tracing a figure-eight of the given
// radius at the given speed; used by the VIO sync-error study, where yaw
// dynamics expose camera–IMU timestamp offsets.
func FigureEight(radius, speed float64) func(t time.Duration) (Pose, mathx.Vec3) {
	if radius <= 0 {
		panic("world: FigureEight needs positive radius")
	}
	omega := speed / radius
	return func(t time.Duration) (Pose, mathx.Vec3) {
		s := t.Seconds()
		phase := omega * s
		// Two tangent circles; switch every full loop.
		loop := int(phase / (2 * math.Pi))
		ph := math.Mod(phase, 2*math.Pi)
		var pose Pose
		var yawRate float64
		if loop%2 == 0 {
			// Left circle, counter-clockwise, centered at (0, radius).
			pose.Pos = mathx.Vec2{X: radius * math.Sin(ph), Y: radius * (1 - math.Cos(ph))}
			pose.Heading = ph
			yawRate = omega
		} else {
			// Right circle, clockwise, centered at (0, -radius).
			pose.Pos = mathx.Vec2{X: radius * math.Sin(ph), Y: -radius * (1 - math.Cos(ph))}
			pose.Heading = -ph
			yawRate = -omega
		}
		pose.Heading = mathx.WrapAngle(pose.Heading)
		return pose, mathx.Vec3{Z: yawRate}
	}
}

// NewRing builds a circular-course world: landmark posts line both sides of
// a ring of the given centerline radius (centered at the origin). Used by
// the constant-curvature localization experiments, where steady yaw rate
// exposes camera–IMU synchronization errors.
func NewRing(radius float64, rng *sim.RNG) *World {
	w := &World{}
	circumference := 2 * math.Pi * radius
	n := int(circumference / 2.5)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		for _, dr := range []float64{-5, 5} {
			r := radius + dr + rng.Uniform(-0.5, 0.5)
			w.Landmarks = append(w.Landmarks, mathx.Vec3{
				X: r * math.Cos(ang+rng.Uniform(-0.02, 0.02)),
				Y: r * math.Sin(ang+rng.Uniform(-0.02, 0.02)),
				Z: rng.Uniform(0.5, 3),
			})
		}
	}
	return w
}

// CampusLoop builds a rectangular loop world (a university-campus style
// deployment) with landmarks along all four legs and a few static planters.
func CampusLoop(side float64, rng *sim.RNG) *World {
	w := &World{}
	corners := []mathx.Vec2{{}, {X: side}, {X: side, Y: side}, {Y: side}}
	for i := range corners {
		a, b := corners[i], corners[(i+1)%4]
		w.Lanes = append(w.Lanes, Lane{Start: a, End: b, Width: 3})
		dir := b.Sub(a)
		length := dir.Norm()
		dir = dir.Scale(1 / length)
		normal := mathx.Vec2{X: -dir.Y, Y: dir.X}
		for s := 3.0; s < length; s += 4 {
			p := a.Add(dir.Scale(s)).Add(normal.Scale(4 + rng.Uniform(-1, 1)))
			w.Landmarks = append(w.Landmarks, mathx.Vec3{X: p.X, Y: p.Y, Z: rng.Uniform(0.5, 3)})
		}
	}
	w.AddStaticObstacle(mathx.Vec2{X: side / 2, Y: -1}, 0.5)
	return w
}
