package detect

import (
	"math"
	"strings"
	"testing"
	"time"

	"sov/internal/mathx"
	"sov/internal/sim"
	"sov/internal/world"
)

func testWorld() *world.World {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 10}, 0.5)
	return w
}

func TestDetectFindsCloseObject(t *testing.T) {
	w := testWorld()
	d := New(DefaultConfig(), w, sim.NewRNG(1))
	found := 0
	n := 1000
	for i := 0; i < n; i++ {
		objs := d.Detect(time.Duration(i)*33*time.Millisecond, world.Pose{})
		for _, o := range objs {
			if !o.FalsePositive {
				found++
				if math.Abs(o.Range-10) > 1.5 {
					t.Fatalf("range = %v, want ~10", o.Range)
				}
				if math.Abs(o.Bearing) > 0.1 {
					t.Fatalf("bearing = %v", o.Bearing)
				}
			}
		}
	}
	// Recall at 10 m with falloff ≈ 0.97*(1-10/35*0.5) ≈ 0.83.
	rate := float64(found) / float64(n)
	if rate < 0.75 || rate > 0.95 {
		t.Fatalf("detection rate = %v, want ~0.83", rate)
	}
}

func TestDetectMissesSomeObjects(t *testing.T) {
	w := testWorld()
	d := New(DefaultConfig(), w, sim.NewRNG(2))
	for i := 0; i < 2000; i++ {
		d.Detect(0, world.Pose{})
	}
	_, missed, _ := d.Stats()
	if missed == 0 {
		t.Fatal("a 97%-recall detector must miss sometimes — the premise of the reactive path")
	}
}

func TestDetectProducesFalsePositives(t *testing.T) {
	d := New(DefaultConfig(), &world.World{}, sim.NewRNG(3))
	fpSeen := false
	for i := 0; i < 2000; i++ {
		for _, o := range d.Detect(0, world.Pose{}) {
			if o.FalsePositive {
				fpSeen = true
				if o.ID >= 0 {
					t.Fatal("false positives must carry negative IDs")
				}
			}
		}
	}
	if !fpSeen {
		t.Fatal("expected occasional false positives")
	}
	frames, _, fps := d.Stats()
	if frames != 2000 || fps == 0 {
		t.Fatalf("frames=%d fps=%d", frames, fps)
	}
}

func TestDetectRespectsFOVAndRange(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: -10}, 0.5) // behind
	w.AddStaticObstacle(mathx.Vec2{X: 100}, 0.5) // too far
	cfg := DefaultConfig()
	cfg.FalsePositiveRate = 0
	d := New(cfg, w, sim.NewRNG(4))
	for i := 0; i < 500; i++ {
		if objs := d.Detect(0, world.Pose{}); len(objs) != 0 {
			t.Fatalf("detected out-of-view object: %+v", objs)
		}
	}
}

func TestVehicleFramePosition(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 0, Y: 10}, 0.5)
	cfg := DefaultConfig()
	cfg.FalsePositiveRate = 0
	cfg.RangeNoiseStd = 0
	cfg.BearingNoiseStd = 0
	cfg.Recall = 1
	d := New(cfg, w, sim.NewRNG(5))
	// Facing +Y, the object is dead ahead → vehicle-frame +X.
	pose := world.Pose{Heading: math.Pi / 2}
	objs := d.Detect(0, pose)
	if len(objs) != 1 {
		t.Fatalf("objs = %d", len(objs))
	}
	if math.Abs(objs[0].Pos.X-10) > 1e-6 || math.Abs(objs[0].Pos.Y) > 1e-6 {
		t.Fatalf("vehicle-frame pos = %v, want (10,0)", objs[0].Pos)
	}
	back := ToWorld(pose, objs[0].Pos)
	if back.DistTo(mathx.Vec2{X: 0, Y: 10}) > 1e-6 {
		t.Fatalf("ToWorld = %v", back)
	}
}

func TestClassConfusion(t *testing.T) {
	w := &world.World{}
	w.AddCutInPedestrian(10, 0, 0) // pedestrian standing at x=10, y=-3... place in view
	w.Obstacles[0].Traj = world.StaticTrajectory(mathx.Vec2{X: 10})
	cfg := DefaultConfig()
	cfg.FalsePositiveRate = 0
	cfg.Recall = 1
	d := New(cfg, w, sim.NewRNG(6))
	wrong := 0
	n := 3000
	for i := 0; i < n; i++ {
		for _, o := range d.Detect(0, world.Pose{}) {
			if o.Kind != world.KindPedestrian {
				wrong++
			}
		}
	}
	rate := float64(wrong) / float64(n)
	if rate < 0.01 || rate > 0.12 {
		t.Fatalf("class confusion rate = %v, want ~0.05", rate)
	}
}

func TestConfidenceInRange(t *testing.T) {
	w := testWorld()
	d := New(DefaultConfig(), w, sim.NewRNG(7))
	for i := 0; i < 500; i++ {
		for _, o := range d.Detect(0, world.Pose{}) {
			if o.Confidence < 0 || o.Confidence > 1 {
				t.Fatalf("confidence = %v", o.Confidence)
			}
		}
	}
}

func TestEvaluateDetectionQuality(t *testing.T) {
	w := &world.World{}
	w.AddStaticObstacle(mathx.Vec2{X: 6}, 0.5)
	w.AddStaticObstacle(mathx.Vec2{X: 15}, 0.5)
	w.AddStaticObstacle(mathx.Vec2{X: 28}, 0.5)
	res := Evaluate(DefaultConfig(), w, world.Pose{}, 800, 9)
	if res.Frames != 800 {
		t.Fatalf("frames = %d", res.Frames)
	}
	// Recall falls with range (the configured falloff).
	if len(res.Bands) != 3 {
		t.Fatalf("bands = %d", len(res.Bands))
	}
	if res.Bands[0].Recall <= res.Bands[2].Recall {
		t.Fatalf("recall should fall with range: %.2f vs %.2f",
			res.Bands[0].Recall, res.Bands[2].Recall)
	}
	if res.Bands[0].Recall < 0.8 {
		t.Fatalf("near-band recall = %.2f", res.Bands[0].Recall)
	}
	// Range accuracy near the configured 0.2 m noise.
	if res.Bands[0].MeanAbsRangeErr > 0.4 || res.Bands[0].MeanAbsRangeErr <= 0 {
		t.Fatalf("range err = %.3f", res.Bands[0].MeanAbsRangeErr)
	}
	if res.Precision < 0.95 {
		t.Fatalf("precision = %.3f", res.Precision)
	}
	if math.Abs(res.ClassAccuracy-0.95) > 0.05 {
		t.Fatalf("class accuracy = %.3f, want ~0.95", res.ClassAccuracy)
	}
	if !strings.Contains(res.Render(), "precision") {
		t.Fatal("render missing precision")
	}
}
