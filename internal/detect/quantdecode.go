package detect

import (
	"sov/internal/nn"
	"sov/internal/parallel"
)

// Fixed-point detection decode (DESIGN.md §8). The quantized YOLO head hands
// over its raw int8 grid tensor; cells threshold on raw objectness codes —
// one int8 comparison — before any sigmoid table lookup, the class argmax
// runs in the code domain (the sigmoid is monotonic, so the argmax over
// codes is the argmax over scores), and only surviving cells pay for box
// assembly. No intermediate GridBox/ClassScores materialize at all.

// decodeQuantBox scores one surviving grid cell from its int8 codes.
//
//sov:hotpath
func decodeQuantBox(raw *nn.QTensor, lut *nn.SigmoidLUT, classes, gy, gx int) BBox {
	bestC := 0
	bestCode := int8(-128)
	base := (5*raw.H+gy)*raw.W + gx
	plane := raw.H * raw.W
	for c := 0; c < classes; c++ {
		if code := raw.Data[base+c*plane]; code > bestCode {
			bestCode = code
			bestC = c
		}
	}
	obj := lut.At(raw.At(0, gy, gx))
	cx := (float32(gx) + lut.At(raw.At(1, gy, gx))) / float32(raw.W)
	cy := (float32(gy) + lut.At(raw.At(2, gy, gx))) / float32(raw.H)
	w := lut.At(raw.At(3, gy, gx))
	h := lut.At(raw.At(4, gy, gx))
	return BBox{
		X0:    clamp01(cx - w/2),
		Y0:    clamp01(cy - h/2),
		X1:    clamp01(cx + w/2),
		Y1:    clamp01(cy + h/2),
		Score: obj * lut.At(bestCode),
		Class: bestC,
	}
}

// DecodeQuantGridInto appends boxes decoded from the quantized head's raw
// output tensor to dst (reusing its capacity) and returns it. Output order
// matches the serial row-major cell scan for any worker count, and — because
// both paths read the same int8 codes through the same table — is identical
// to decoding the dequantized cells.
//
//sov:hotpath
func DecodeQuantGridInto(dst []BBox, raw *nn.QTensor, classes int, lut *nn.SigmoidLUT, objThreshold float32) []BBox {
	thr := lut.ThresholdCode(objThreshold)
	cells := raw.H * raw.W
	if parallel.Workers() <= 1 || cells < 2*decodeGrain {
		for gy := 0; gy < raw.H; gy++ {
			row := raw.Data[gy*raw.W : (gy+1)*raw.W] // objectness plane, row gy
			for gx, code := range row {
				if code < thr {
					continue
				}
				dst = append(dst, decodeQuantBox(raw, lut, classes, gy, gx))
			}
		}
		return dst
	}
	//sovlint:ignore hotalloc parallel fan-out buckets are per-call bookkeeping, not steady-state frame work
	buckets := make([][]BBox, parallel.Tiles(cells, decodeGrain))
	//sovlint:ignore hotalloc fan-out closure only exists on the parallel path; the serial path above is allocation-free
	parallel.ForTiled(cells, decodeGrain, func(tile, i0, i1 int) {
		var out []BBox
		for i := i0; i < i1; i++ {
			if raw.Data[i] < thr { // objectness plane is the tensor's first H×W block
				continue
			}
			//sovlint:ignore hotalloc survivors are sparse; the bucket stays tiny and dies with the call
			out = append(out, decodeQuantBox(raw, lut, classes, i/raw.W, i%raw.W))
		}
		buckets[tile] = out
	})
	for _, b := range buckets {
		dst = append(dst, b...)
	}
	return dst
}

// RunQuantCNN executes the fixed-point DNN detection path — int8 forward
// pass, code-domain grid decode, NMS — returning final boxes. The quantized
// counterpart of RunCNN.
func RunQuantCNN(model *nn.QYOLOHead, input *nn.Tensor, objThreshold, iouThreshold float32) []BBox {
	return RunQuantCNNInto(nil, model, input, objThreshold, iouThreshold, &QuantDetectScratch{})
}

// QuantDetectScratch carries the detection path's reusable buffers across
// frames: the batch tensor slots, the decoded candidate list, and the NMS
// sort scratch. The zero value is ready to use; a control loop that keeps
// one per detector allocates nothing once warm.
type QuantDetectScratch struct {
	raws   []*nn.QTensor
	boxes  []BBox
	sorted []BBox
}

// RunQuantCNNInto is the allocation-free RunQuantCNN: candidates, NMS
// scratch, and the returned slice's backing store all live in caller-owned
// buffers. dst is overwritten and returned re-sliced (pass the previous
// frame's result to reuse its capacity). Output is byte-identical to
// RunQuantCNN.
//
//sov:hotpath
func RunQuantCNNInto(dst []BBox, model *nn.QYOLOHead, input *nn.Tensor, objThreshold, iouThreshold float32, s *QuantDetectScratch) []BBox {
	raw := model.ForwardRaw(input)
	s.boxes = DecodeQuantGridInto(s.boxes[:0], raw, model.Classes, model.LUT(), objThreshold)
	nn.PutQTensor(raw)
	return NMSInto(dst[:0], s.boxes, iouThreshold, &s.sorted)
}

// RunQuantCNNBatch runs the detection path over a multi-camera batch with
// one layer-major forward pass (nn.ForwardRawBatch): each layer's weight
// panels are traversed while all images are in flight, so the packed panels
// stay cache-resident across the batch. out[i] receives camera i's final
// boxes (out grows to len(inputs); per-camera slices reuse their capacity).
// Each camera's boxes are byte-identical to RunQuantCNN on its input alone.
//
//sov:hotpath
func RunQuantCNNBatch(out [][]BBox, model *nn.QYOLOHead, inputs []*nn.Tensor, objThreshold, iouThreshold float32, s *QuantDetectScratch) [][]BBox {
	s.raws = model.ForwardRawBatch(s.raws, inputs)
	for len(out) < len(inputs) {
		out = append(out, nil)
	}
	out = out[:len(inputs)]
	for i, raw := range s.raws {
		s.boxes = DecodeQuantGridInto(s.boxes[:0], raw, model.Classes, model.LUT(), objThreshold)
		nn.PutQTensor(raw)
		s.raws[i] = nil
		out[i] = NMSInto(out[i][:0], s.boxes, iouThreshold, &s.sorted)
	}
	return out
}
