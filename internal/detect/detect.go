// Package detect implements the object-detection stage of the perception
// pipeline. The compute substrate is a real CNN forward pass (internal/nn);
// detection *quality* is modeled with an oracle-plus-noise channel because
// the paper's models are trained on proprietary field data we do not have
// (see DESIGN.md, substitutions). The channel reproduces the two failure
// modes the paper designs the reactive path around: missed objects and
// false positives (Sec. III-C, Sec. IV).
package detect

import (
	"math"
	"time"

	"sov/internal/mathx"
	"sov/internal/sim"
	"sov/internal/world"
)

// Object is one detected object in the vehicle frame.
type Object struct {
	ID      int // stable per ground-truth obstacle within a run
	Kind    world.ObstacleKind
	Range   float64 // meters
	Bearing float64 // radians from vehicle heading
	// Pos/Vel are the vehicle-frame Cartesian estimates.
	Pos mathx.Vec2
	Vel mathx.Vec2
	// Radius is the estimated footprint radius (from the detection box
	// extent); the planner needs it to know whether it can steer around.
	Radius float64
	// Confidence is the detector score in [0,1].
	Confidence float64
	// FalsePositive marks hallucinated objects (ground-truth flag used
	// only by evaluation code, never by the pipeline).
	FalsePositive bool
	Time          time.Duration
}

// Config tunes the oracle-noise channel.
type Config struct {
	// Recall is the per-object detection probability at close range.
	Recall float64
	// RangeFalloff reduces recall linearly to zero at MaxRange.
	MaxRange float64
	// FOV is the camera's horizontal field of view.
	FOV float64
	// RangeNoiseStd / BearingNoiseStd perturb estimates.
	RangeNoiseStd   float64
	BearingNoiseStd float64
	// FalsePositiveRate is the expected hallucinations per frame.
	FalsePositiveRate float64
	// ClassAccuracy is the probability the class label is correct.
	ClassAccuracy float64
}

// DefaultConfig returns a field-calibrated channel: high but imperfect
// recall, occasional false positives — enough to exercise the reactive
// path.
func DefaultConfig() Config {
	return Config{
		Recall:            0.97,
		MaxRange:          35,
		FOV:               math.Pi / 2,
		RangeNoiseStd:     0.2, // coarse depth is fine: the paper tolerates ~0.2 m
		BearingNoiseStd:   0.01,
		FalsePositiveRate: 0.01,
		ClassAccuracy:     0.95,
	}
}

// Detector runs the oracle-noise channel over ground-truth visibility.
type Detector struct {
	Config Config
	World  *world.World
	rng    *sim.RNG
	// truth is the visibility scratch; a detector processes one frame at a
	// time (in the pipelined SoV, on the perceive-stage goroutine).
	truth []world.Detection

	frames int
	missed int
	fps    int
}

// New returns a detector bound to a world.
func New(cfg Config, w *world.World, rng *sim.RNG) *Detector {
	return &Detector{Config: cfg, World: w, rng: rng}
}

// Detect returns the detections for a frame captured at time t from pose.
func (d *Detector) Detect(t time.Duration, pose world.Pose) []Object {
	return d.DetectInto(nil, t, pose)
}

// DetectInto appends the frame's detections to dst (reusing its capacity)
// and returns it — the zero-allocation variant of Detect for a recycled
// per-frame buffer. RNG draw order is identical to Detect.
//
//sov:hotpath
func (d *Detector) DetectInto(dst []Object, t time.Duration, pose world.Pose) []Object {
	d.frames++
	cfg := d.Config
	d.truth = d.World.VisibleObstaclesInto(d.truth[:0], pose, t, cfg.MaxRange, cfg.FOV)
	out := dst
	for _, det := range d.truth {
		p := cfg.Recall * (1 - det.Range/cfg.MaxRange*0.5)
		if !d.rng.Bernoulli(p) {
			d.missed++
			continue
		}
		rng := det.Range + d.rng.Normal(0, cfg.RangeNoiseStd)
		brg := det.Bearing + d.rng.Normal(0, cfg.BearingNoiseStd)
		kind := det.Obstacle.Kind
		if !d.rng.Bernoulli(cfg.ClassAccuracy) {
			kind = world.ObstacleKind((int(kind) + 1) % 4)
		}
		obj := Object{
			ID:         det.Obstacle.ID,
			Kind:       kind,
			Range:      rng,
			Bearing:    brg,
			Radius:     math.Max(0.1, det.Obstacle.Radius*(1+d.rng.Normal(0, 0.1))),
			Confidence: mathx.Clamp(d.rng.Normal(0.85, 0.08), 0, 1),
			Time:       t,
		}
		obj.Pos = polarToVehicle(rng, brg)
		// Velocity is NOT produced by single-frame detection; tracking
		// (radar or KCF) supplies it. World velocity retained for eval.
		obj.Vel = det.Vel
		out = append(out, obj)
	}
	// False positives appear at random plausible locations.
	if cfg.FalsePositiveRate > 0 && d.rng.Bernoulli(cfg.FalsePositiveRate) {
		d.fps++
		rng := d.rng.Uniform(3, cfg.MaxRange)
		brg := d.rng.Uniform(-cfg.FOV/2, cfg.FOV/2)
		out = append(out, Object{
			ID:            -d.fps, // negative IDs mark hallucinations
			Kind:          world.KindStatic,
			Range:         rng,
			Bearing:       brg,
			Pos:           polarToVehicle(rng, brg),
			Radius:        0.3,
			Confidence:    mathx.Clamp(d.rng.Normal(0.6, 0.1), 0, 1),
			FalsePositive: true,
			Time:          t,
		})
	}
	return out
}

// Stats reports frames processed, objects missed, and false positives.
func (d *Detector) Stats() (frames, missed, falsePositives int) {
	return d.frames, d.missed, d.fps
}

func polarToVehicle(r, bearing float64) mathx.Vec2 {
	return mathx.Vec2{X: r * math.Cos(bearing), Y: r * math.Sin(bearing)}
}

// ToWorld converts a vehicle-frame detection position to world frame.
func ToWorld(pose world.Pose, vehicleFrame mathx.Vec2) mathx.Vec2 {
	return pose.Pos.Add(vehicleFrame.Rotate(pose.Heading))
}
