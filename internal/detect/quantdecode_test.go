package detect

import (
	"math"
	"testing"

	"sov/internal/nn"
	"sov/internal/parallel"
)

func quantTestModel() (*nn.YOLOHead, *nn.QYOLOHead, *nn.Tensor) {
	model := nn.NewTinyYOLO(56, 72, 3, 11)
	calib := nn.NewTensor(1, 56, 72)
	for i := range calib.Data {
		calib.Data[i] = float32(i%7) / 7
	}
	in := nn.NewTensor(1, 56, 72)
	for i := range in.Data {
		in.Data[i] = float32(i%11) / 11
	}
	return model, nn.QuantizeYOLO(model, calib), in
}

// TestDecodeQuantMatchesCellDecode: the fused code-domain decode must be
// byte-identical to running the quantized inference through the generic
// GridBox decode — both read the same int8 codes through the same table.
func TestDecodeQuantMatchesCellDecode(t *testing.T) {
	_, qy, in := quantTestModel()
	const thr = 0.35
	cells := qy.Infer(in)
	want := DecodeGrid(cells, thr)

	raw := qy.ForwardRaw(in)
	got := DecodeQuantGridInto(nil, raw, qy.Classes, qy.LUT(), thr)
	nn.PutQTensor(raw)

	if len(got) != len(want) {
		t.Fatalf("box count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("box %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestDecodeQuantTracksFloatDecode decodes every cell (threshold 0) in both
// the float and fixed-point paths and checks scores and box coordinates stay
// within the detection accuracy budget (DESIGN.md §8).
func TestDecodeQuantTracksFloatDecode(t *testing.T) {
	model, qy, in := quantTestModel()
	ref := DecodeGrid(model.Infer(in), 0)

	raw := qy.ForwardRaw(in)
	got := DecodeQuantGridInto(nil, raw, qy.Classes, qy.LUT(), 0)
	nn.PutQTensor(raw)

	if len(got) != len(ref) {
		t.Fatalf("cell count %d != %d", len(got), len(ref))
	}
	for i := range ref {
		if d := math.Abs(float64(got[i].Score - ref[i].Score)); d > 0.08 {
			t.Fatalf("cell %d score off by %g", i, d)
		}
		for _, pair := range [][2]float32{{got[i].X0, ref[i].X0}, {got[i].Y0, ref[i].Y0}, {got[i].X1, ref[i].X1}, {got[i].Y1, ref[i].Y1}} {
			if d := math.Abs(float64(pair[0] - pair[1])); d > 0.05 {
				t.Fatalf("cell %d coordinate off by %g", i, d)
			}
		}
	}
}

// TestDecodeQuantWorkerInvariance: the tiled parallel path must emit boxes
// in exactly the serial scan order.
func TestDecodeQuantWorkerInvariance(t *testing.T) {
	_, qy, in := quantTestModel()
	raw := qy.ForwardRaw(in)
	defer nn.PutQTensor(raw)

	prev := parallel.SetWorkers(1)
	serial := DecodeQuantGridInto(nil, raw, qy.Classes, qy.LUT(), 0.3)
	parallel.SetWorkers(8)
	wide := DecodeQuantGridInto(nil, raw, qy.Classes, qy.LUT(), 0.3)
	parallel.SetWorkers(prev)

	if len(serial) != len(wide) {
		t.Fatalf("box count %d != %d across worker counts", len(serial), len(wide))
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("box %d differs across worker counts", i)
		}
	}
}

// TestRunQuantCNNEndToEnd mirrors TestRunCNNEndToEnd on the fixed-point path.
func TestRunQuantCNNEndToEnd(t *testing.T) {
	_, qy, in := quantTestModel()
	a := RunQuantCNN(qy, in, 0.3, 0.5)
	b := RunQuantCNN(qy, in, 0.3, 0.5)
	if len(a) != len(b) {
		t.Fatal("non-deterministic quantized CNN path")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic quantized CNN path")
		}
		if a[i].Score < 0 || a[i].Score > 1 {
			t.Fatalf("score out of range: %v", a[i].Score)
		}
	}
	strict := RunQuantCNN(qy, in, 0.9, 0.5)
	if len(strict) > len(a) {
		t.Fatal("stricter threshold produced more boxes")
	}
}

// TestRunQuantCNNIntoMatches: the allocation-free runner must be
// byte-identical to RunQuantCNN, including across reuses of the same
// scratch and destination.
func TestRunQuantCNNIntoMatches(t *testing.T) {
	_, qy, in := quantTestModel()
	want := RunQuantCNN(qy, in, 0.3, 0.5)
	var s QuantDetectScratch
	var dst []BBox
	for pass := 0; pass < 3; pass++ {
		dst = RunQuantCNNInto(dst, qy, in, 0.3, 0.5, &s)
		if len(dst) != len(want) {
			t.Fatalf("pass %d: box count %d != %d", pass, len(dst), len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("pass %d box %d: %+v != %+v", pass, i, dst[i], want[i])
			}
		}
	}
}

// TestRunQuantCNNBatchMatchesSingle: the layer-major batched runner must
// produce, per camera, exactly the boxes the single-image runner produces —
// for any worker count.
func TestRunQuantCNNBatchMatchesSingle(t *testing.T) {
	_, qy, in := quantTestModel()
	inputs := make([]*nn.Tensor, 4)
	for cam := range inputs {
		ti := nn.NewTensor(1, 56, 72)
		for i := range ti.Data {
			ti.Data[i] = float32((i*(cam+3))%13) / 13
		}
		inputs[cam] = ti
	}
	inputs[1] = in
	want := make([][]BBox, len(inputs))
	for cam, ti := range inputs {
		want[cam] = RunQuantCNN(qy, ti, 0.3, 0.5)
	}
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	for _, workers := range []int{1, 8} {
		parallel.SetWorkers(workers)
		var s QuantDetectScratch
		var out [][]BBox
		for pass := 0; pass < 2; pass++ { // second pass reuses all scratch
			out = RunQuantCNNBatch(out, qy, inputs, 0.3, 0.5, &s)
			if len(out) != len(inputs) {
				t.Fatalf("workers %d: batch size %d != %d", workers, len(out), len(inputs))
			}
			for cam := range inputs {
				if len(out[cam]) != len(want[cam]) {
					t.Fatalf("workers %d cam %d: box count %d != %d", workers, cam, len(out[cam]), len(want[cam]))
				}
				for i := range want[cam] {
					if out[cam][i] != want[cam][i] {
						t.Fatalf("workers %d cam %d box %d differs", workers, cam, i)
					}
				}
			}
		}
	}
}
