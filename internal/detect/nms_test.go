package detect

import (
	"math"
	"testing"

	"sov/internal/nn"
)

func TestIoUIdenticalBoxes(t *testing.T) {
	b := BBox{X0: 0.1, Y0: 0.1, X1: 0.3, Y1: 0.3}
	if got := IoU(b, b); math.Abs(float64(got)-1) > 1e-6 {
		t.Fatalf("IoU(self) = %v", got)
	}
}

func TestIoUDisjoint(t *testing.T) {
	a := BBox{X0: 0, Y0: 0, X1: 0.1, Y1: 0.1}
	b := BBox{X0: 0.5, Y0: 0.5, X1: 0.6, Y1: 0.6}
	if IoU(a, b) != 0 {
		t.Fatal("disjoint IoU != 0")
	}
}

func TestIoUKnownOverlap(t *testing.T) {
	a := BBox{X0: 0, Y0: 0, X1: 0.2, Y1: 0.2}
	b := BBox{X0: 0.1, Y0: 0, X1: 0.3, Y1: 0.2}
	// inter = 0.1*0.2 = 0.02; union = 0.04+0.04-0.02 = 0.06.
	if got := IoU(a, b); math.Abs(float64(got)-1.0/3.0) > 1e-6 {
		t.Fatalf("IoU = %v, want 1/3", got)
	}
}

func TestIoUDegenerate(t *testing.T) {
	a := BBox{X0: 0.2, Y0: 0.2, X1: 0.1, Y1: 0.1} // inverted
	b := BBox{X0: 0, Y0: 0, X1: 1, Y1: 1}
	if a.Area() != 0 || IoU(a, b) != 0 {
		t.Fatal("degenerate box should have zero area/IoU")
	}
}

func TestNMSSuppressesSameClassOverlaps(t *testing.T) {
	boxes := []BBox{
		{X0: 0.1, Y0: 0.1, X1: 0.3, Y1: 0.3, Score: 0.9, Class: 0},
		{X0: 0.11, Y0: 0.11, X1: 0.31, Y1: 0.31, Score: 0.8, Class: 0}, // duplicate
		{X0: 0.6, Y0: 0.6, X1: 0.8, Y1: 0.8, Score: 0.7, Class: 0},     // separate object
	}
	kept := NMS(boxes, 0.5)
	if len(kept) != 2 {
		t.Fatalf("kept = %d, want 2", len(kept))
	}
	if kept[0].Score != 0.9 {
		t.Fatal("highest score must survive")
	}
}

func TestNMSKeepsDifferentClasses(t *testing.T) {
	boxes := []BBox{
		{X0: 0.1, Y0: 0.1, X1: 0.3, Y1: 0.3, Score: 0.9, Class: 0},
		{X0: 0.1, Y0: 0.1, X1: 0.3, Y1: 0.3, Score: 0.8, Class: 1},
	}
	if kept := NMS(boxes, 0.5); len(kept) != 2 {
		t.Fatalf("class-aware NMS kept %d, want 2", len(kept))
	}
}

func TestNMSEmptyAndDoesNotMutate(t *testing.T) {
	if got := NMS(nil, 0.5); len(got) != 0 {
		t.Fatal("empty NMS")
	}
	boxes := []BBox{{Score: 0.1}, {Score: 0.9}}
	NMS(boxes, 0.5)
	if boxes[0].Score != 0.1 {
		t.Fatal("NMS mutated input order")
	}
}

func TestDecodeGridThreshold(t *testing.T) {
	cells := []nn.GridBox{
		{CX: 0.5, CY: 0.5, W: 0.2, H: 0.2, Objectness: 0.9, ClassScores: []float32{0.1, 0.8}},
		{CX: 0.2, CY: 0.2, W: 0.1, H: 0.1, Objectness: 0.1, ClassScores: []float32{0.5, 0.5}},
	}
	boxes := DecodeGrid(cells, 0.5)
	if len(boxes) != 1 {
		t.Fatalf("decoded = %d, want 1", len(boxes))
	}
	b := boxes[0]
	if b.Class != 1 {
		t.Fatalf("class = %d, want 1", b.Class)
	}
	if math.Abs(float64(b.Score)-0.9*0.8) > 1e-6 {
		t.Fatalf("score = %v", b.Score)
	}
	if math.Abs(float64(b.X0)-0.4) > 1e-6 || math.Abs(float64(b.X1)-0.6) > 1e-6 {
		t.Fatalf("box = %+v", b)
	}
}

func TestRunCNNEndToEnd(t *testing.T) {
	model := nn.NewTinyYOLO(56, 72, 3, 11)
	in := nn.NewTensor(1, 56, 72)
	for i := range in.Data {
		in.Data[i] = float32(i%7) / 7
	}
	// Untrained weights: just verify the path runs, respects thresholds,
	// and is deterministic.
	a := RunCNN(model, in, 0.3, 0.5)
	b := RunCNN(model, in, 0.3, 0.5)
	if len(a) != len(b) {
		t.Fatal("non-deterministic CNN path")
	}
	for _, box := range a {
		if box.Score < 0 || box.Score > 1 {
			t.Fatalf("score out of range: %v", box.Score)
		}
	}
	// A stricter threshold can only reduce detections.
	strict := RunCNN(model, in, 0.9, 0.5)
	if len(strict) > len(a) {
		t.Fatal("stricter threshold produced more boxes")
	}
}

func BenchmarkRunCNNFullPath(b *testing.B) {
	model := nn.NewTinyYOLO(120, 160, 4, 42)
	in := nn.NewTensor(1, 120, 160)
	for i := range in.Data {
		in.Data[i] = float32(i%13) / 13
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunCNN(model, in, 0.4, 0.5)
	}
}
