package detect

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sov/internal/sim"
	"sov/internal/world"
)

// RangeBandStats is the detection quality in one range band.
type RangeBandStats struct {
	LoM, HiM        float64
	Truths          int
	Detected        int
	Recall          float64
	MeanAbsRangeErr float64
}

// EvalResult is a detector evaluation over many frames.
type EvalResult struct {
	Frames         int
	Bands          []RangeBandStats
	FalsePositives int
	Precision      float64
	ClassAccuracy  float64
}

// Evaluate measures the detector against ground truth over frames frames of
// a standing scene: per-range-band recall, range accuracy, precision, and
// class accuracy. This is the field-evaluation loop that decides when a
// retrained model ships (the Fig. 1 model-update cycle).
func Evaluate(cfg Config, w *world.World, pose world.Pose, frames int, seed int64) EvalResult {
	d := New(cfg, w, sim.NewRNG(seed))
	edges := []float64{0, 10, 20, cfg.MaxRange}
	res := EvalResult{Frames: frames}
	for i := 0; i < len(edges)-1; i++ {
		res.Bands = append(res.Bands, RangeBandStats{LoM: edges[i], HiM: edges[i+1]})
	}
	classRight, classTotal, truePos := 0, 0, 0
	var rangeErrSum []float64 = make([]float64, len(res.Bands))

	for f := 0; f < frames; f++ {
		t := time.Duration(f) * 33 * time.Millisecond
		truths := w.VisibleObstacles(pose, t, cfg.MaxRange, cfg.FOV)
		objs := d.Detect(t, pose)
		// Index detections by ground-truth ID (the oracle channel keeps
		// the association; a field evaluation would match by IoU).
		byID := map[int]Object{}
		for _, o := range objs {
			if o.FalsePositive {
				res.FalsePositives++
				continue
			}
			byID[o.ID] = o
			truePos++
		}
		for _, tr := range truths {
			for bi := range res.Bands {
				b := &res.Bands[bi]
				if tr.Range >= b.LoM && tr.Range < b.HiM {
					b.Truths++
					if o, ok := byID[tr.Obstacle.ID]; ok {
						b.Detected++
						rangeErrSum[bi] += math.Abs(o.Range - tr.Range)
						classTotal++
						if o.Kind == tr.Obstacle.Kind {
							classRight++
						}
					}
				}
			}
		}
	}
	for bi := range res.Bands {
		b := &res.Bands[bi]
		if b.Truths > 0 {
			b.Recall = float64(b.Detected) / float64(b.Truths)
		}
		if b.Detected > 0 {
			b.MeanAbsRangeErr = rangeErrSum[bi] / float64(b.Detected)
		}
	}
	if truePos+res.FalsePositives > 0 {
		res.Precision = float64(truePos) / float64(truePos+res.FalsePositives)
	}
	if classTotal > 0 {
		res.ClassAccuracy = float64(classRight) / float64(classTotal)
	}
	return res
}

// Render formats the evaluation as a table.
func (r EvalResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "detector evaluation over %d frames:\n", r.Frames)
	fmt.Fprintf(&b, "  %-12s %-8s %-10s %s\n", "band (m)", "recall", "truths", "range err (m)")
	for _, band := range r.Bands {
		fmt.Fprintf(&b, "  %4.0f-%-6.0f  %-8.2f %-10d %.2f\n",
			band.LoM, band.HiM, band.Recall, band.Truths, band.MeanAbsRangeErr)
	}
	fmt.Fprintf(&b, "  precision %.3f, class accuracy %.3f, false positives %d\n",
		r.Precision, r.ClassAccuracy, r.FalsePositives)
	return b.String()
}
