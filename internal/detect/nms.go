package detect

import (
	"sort"

	"sov/internal/nn"
	"sov/internal/parallel"
)

// BBox is an axis-aligned detection box in normalized image coordinates.
type BBox struct {
	X0, Y0, X1, Y1 float32
	Score          float32
	Class          int
}

// Area returns the box area (0 for degenerate boxes).
func (b BBox) Area() float32 {
	w := b.X1 - b.X0
	h := b.Y1 - b.Y0
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// IoU returns the intersection-over-union of two boxes.
func IoU(a, b BBox) float32 {
	x0 := maxf(a.X0, b.X0)
	y0 := maxf(a.Y0, b.Y0)
	x1 := minf(a.X1, b.X1)
	y1 := minf(a.Y1, b.Y1)
	iw := x1 - x0
	ih := y1 - y0
	if iw <= 0 || ih <= 0 {
		return 0
	}
	inter := iw * ih
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

// decodeGrain is the fixed cell-scoring tile size; it depends only on the
// cell count, so tile-ordered output is identical for any worker count.
const decodeGrain = 256

// decodeBox scores one grid cell: score = objectness × best class score.
func decodeBox(c nn.GridBox) BBox {
	bestC, bestS := 0, float32(0)
	for i, s := range c.ClassScores {
		if s > bestS {
			bestS = s
			bestC = i
		}
	}
	return BBox{
		X0:    clamp01(c.CX - c.W/2),
		Y0:    clamp01(c.CY - c.H/2),
		X1:    clamp01(c.CX + c.W/2),
		Y1:    clamp01(c.CY + c.H/2),
		Score: c.Objectness * bestS,
		Class: bestC,
	}
}

// DecodeGrid converts raw YOLO-grid cells into boxes above the objectness
// threshold, with score = objectness × best class score. Cells score
// independently; tiles fill ordered buckets that concatenate back into the
// serial scan order.
func DecodeGrid(cells []nn.GridBox, objThreshold float32) []BBox {
	return DecodeGridInto(make([]BBox, 0, 16), cells, objThreshold)
}

// DecodeGridInto appends the decoded boxes to dst (reusing its capacity)
// and returns it — the zero-allocation variant of DecodeGrid for a
// recycled per-frame buffer. Output order matches DecodeGrid exactly.
func DecodeGridInto(dst []BBox, cells []nn.GridBox, objThreshold float32) []BBox {
	if parallel.Workers() <= 1 || len(cells) < 2*decodeGrain {
		for _, c := range cells {
			if c.Objectness < objThreshold {
				continue
			}
			dst = append(dst, decodeBox(c))
		}
		return dst
	}
	buckets := make([][]BBox, parallel.Tiles(len(cells), decodeGrain))
	parallel.ForTiled(len(cells), decodeGrain, func(tile, i0, i1 int) {
		var out []BBox
		for _, c := range cells[i0:i1] {
			if c.Objectness < objThreshold {
				continue
			}
			out = append(out, decodeBox(c))
		}
		buckets[tile] = out
	})
	for _, b := range buckets {
		dst = append(dst, b...)
	}
	return dst
}

// NMS performs class-aware greedy non-maximum suppression: boxes are taken
// in descending score order; a box is suppressed when it overlaps an
// already-kept box of the same class by more than iouThreshold.
func NMS(boxes []BBox, iouThreshold float32) []BBox {
	sorted := make([]BBox, len(boxes))
	copy(sorted, boxes)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	var kept []BBox
	for _, b := range sorted {
		ok := true
		for _, k := range kept {
			if k.Class == b.Class && IoU(k, b) > iouThreshold {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, b)
		}
	}
	return kept
}

// NMSInto is the reusing variant of NMS: kept boxes append to dst and the
// score-ordering pass borrows *scratch (both grown as needed and handed
// back). The sort is an insertion sort — stable, like NMS's
// sort.SliceStable, so the output is byte-identical — and allocation-free
// once the scratch has warmed to the working-set size.
func NMSInto(dst, boxes []BBox, iouThreshold float32, scratch *[]BBox) []BBox {
	sorted := append((*scratch)[:0], boxes...)
	*scratch = sorted
	for i := 1; i < len(sorted); i++ {
		b := sorted[i]
		j := i
		for j > 0 && sorted[j-1].Score < b.Score {
			sorted[j] = sorted[j-1]
			j--
		}
		sorted[j] = b
	}
	kept := dst
	for _, b := range sorted {
		ok := true
		for _, k := range kept {
			if k.Class == b.Class && IoU(k, b) > iouThreshold {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, b)
		}
	}
	return kept
}

// RunCNN executes the full DNN detection path — forward pass, grid decode,
// NMS — returning final boxes. This is the compute-substrate counterpart of
// the oracle-noise Detector: it exercises the real math, while Detector
// models field accuracy.
func RunCNN(model *nn.YOLOHead, input *nn.Tensor, objThreshold, iouThreshold float32) []BBox {
	cells := model.Infer(input)
	return NMS(DecodeGrid(cells, objThreshold), iouThreshold)
}
