package platform

import "time"

// DataPath models Sec. V-A's second critique of mobile SoCs: accelerator
// offload that routes sensor data through the CPU and the full memory
// hierarchy ("redundant data copying coordinated by the power-hungry CPU"),
// versus the FPGA design where accelerators manipulate sensor data in situ.
type DataPath struct {
	Name string
	// CopiesPerFrame is how many times the frame crosses memory before the
	// accelerator sees it.
	CopiesPerFrame int
	// CopyBandwidthBps is the effective memcpy bandwidth.
	CopyBandwidthBps float64
	// CoordinationPowerW is the CPU power burned coordinating the copies.
	CoordinationPowerW float64
	// FixedOverhead is driver/IPC cost per frame.
	FixedOverhead time.Duration
}

// MobileSoCDataPath returns the measured mobile-SoC DSP-offload path: the
// paper reports an extra ~1 W and up to ~3 ms per frame.
func MobileSoCDataPath() DataPath {
	return DataPath{
		Name:               "mobile-soc-dsp",
		CopiesPerFrame:     3, // sensor→DRAM, DRAM→CPU cache, CPU→DSP
		CopyBandwidthBps:   6e9,
		CoordinationPowerW: 1.0,
		FixedOverhead:      500 * time.Microsecond,
	}
}

// InSituFPGADataPath returns our design: the sensor interface feeds the
// accelerator directly; no CPU-mediated copies.
func InSituFPGADataPath() DataPath {
	return DataPath{
		Name:             "fpga-in-situ",
		CopiesPerFrame:   0,
		CopyBandwidthBps: 6e9,
	}
}

// FrameOverhead returns the per-frame latency cost of the path for a frame
// of the given size.
func (p DataPath) FrameOverhead(frameBytes int) time.Duration {
	if p.CopiesPerFrame == 0 {
		return p.FixedOverhead
	}
	copyTime := time.Duration(float64(p.CopiesPerFrame) * float64(frameBytes) / p.CopyBandwidthBps * float64(time.Second))
	return p.FixedOverhead + copyTime
}

// FrameEnergyJ returns the per-frame coordination energy.
func (p DataPath) FrameEnergyJ(frameBytes int) float64 {
	return p.CoordinationPowerW * p.FrameOverhead(frameBytes).Seconds()
}

// SustainedPowerW returns the steady coordination power at a frame rate.
func (p DataPath) SustainedPowerW(frameBytes int, fps float64) float64 {
	duty := p.FrameOverhead(frameBytes).Seconds() * fps
	if duty > 1 {
		duty = 1
	}
	return p.CoordinationPowerW * duty
}
