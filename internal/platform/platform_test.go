package platform

import (
	"math"
	"testing"
	"time"
)

func TestCatalogOperatingPoints(t *testing.T) {
	cat := Catalog()
	for _, name := range []string{"CPU", "GPU", "TX2", "FPGA"} {
		p, ok := cat[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if p.PowerW <= 0 || p.CostUSD <= 0 {
			t.Fatalf("%s has invalid power/cost", name)
		}
	}
	// Fig. 6a headline: FPGA beats GPU only on localization.
	gpu, fpga := cat["GPU"], cat["FPGA"]
	if fpga.Latency[TaskLocalization] >= gpu.Latency[TaskLocalization] {
		t.Fatal("FPGA should win localization")
	}
	if fpga.Latency[TaskDepth] <= gpu.Latency[TaskDepth] {
		t.Fatal("GPU should win depth")
	}
	if fpga.Latency[TaskDetection] <= gpu.Latency[TaskDetection] {
		t.Fatal("GPU should win detection")
	}
}

func TestTX2Cumulative844(t *testing.T) {
	// Paper: TX2 cumulative perception latency 844.2 ms.
	got := TX2CumulativePerception()
	want := 844200 * time.Microsecond
	if got != want {
		t.Fatalf("TX2 cumulative = %v, want %v", got, want)
	}
}

func TestCPUDepthEnergyMatchesFig6b(t *testing.T) {
	// Paper annotation: ~1207 J for depth on the CPU.
	cpu := Catalog()["CPU"]
	e, ok := cpu.Energy(TaskDepth)
	if !ok {
		t.Fatal("CPU must support depth")
	}
	if math.Abs(e-1207) > 10 {
		t.Fatalf("CPU depth energy = %v J, want ~1207", e)
	}
}

func TestTX2EnergyMarginalVsGPU(t *testing.T) {
	// Fig. 6b: TX2 has only marginal, sometimes worse, energy vs GPU due
	// to its long latency. Check detection is within 2x either way.
	cat := Catalog()
	eGPU, _ := cat["GPU"].Energy(TaskDetection)
	eTX2, _ := cat["TX2"].Energy(TaskDetection)
	ratio := eTX2 / eGPU
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("TX2/GPU detection energy ratio = %v, want marginal (~1)", ratio)
	}
}

func TestEnergyUnsupportedTask(t *testing.T) {
	gpu := Catalog()["GPU"]
	if _, ok := gpu.Energy(TaskPlanning); ok {
		t.Fatal("GPU does not host planning")
	}
}

func TestOurMappingIs77ms(t *testing.T) {
	r, err := EvaluateMapping(OurDesign(), Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if r.PerceptionLatency != 77*time.Millisecond {
		t.Fatalf("perception latency = %v, want 77 ms", r.PerceptionLatency)
	}
	if r.LocalizationLatency != 24*time.Millisecond {
		t.Fatalf("localization = %v, want 24 ms", r.LocalizationLatency)
	}
}

func TestGPUOnlyMappingIs120ms(t *testing.T) {
	r, err := EvaluateMapping(Mapping{SceneUnderstanding: "GPU", Localization: "GPU"}, Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if r.PerceptionLatency != 120*time.Millisecond {
		t.Fatalf("GPU-only perception = %v, want 120 ms", r.PerceptionLatency)
	}
}

func TestFPGAOffloadGives1p6x(t *testing.T) {
	// Paper: offloading localization improves perception 1.6×.
	cat := Catalog()
	shared, _ := EvaluateMapping(Mapping{SceneUnderstanding: "GPU", Localization: "GPU"}, cat)
	ours, _ := EvaluateMapping(OurDesign(), cat)
	speedup := float64(shared.PerceptionLatency) / float64(ours.PerceptionLatency)
	if math.Abs(speedup-1.56) > 0.1 {
		t.Fatalf("speedup = %v, want ~1.6", speedup)
	}
}

func TestTX2AlwaysBottleneck(t *testing.T) {
	// Fig. 8: any mapping with TX2 in it is the latency bottleneck.
	cat := Catalog()
	ours, _ := EvaluateMapping(OurDesign(), cat)
	for _, m := range []Mapping{
		{SceneUnderstanding: "GPU", Localization: "TX2"},
		{SceneUnderstanding: "TX2", Localization: "GPU"},
		{SceneUnderstanding: "TX2", Localization: "TX2"},
	} {
		r, err := EvaluateMapping(m, cat)
		if err != nil {
			t.Fatal(err)
		}
		if r.PerceptionLatency <= ours.PerceptionLatency {
			t.Fatalf("mapping %+v should be worse than ours", m)
		}
	}
}

func TestExploreMappingsSortedAndOursBest(t *testing.T) {
	results := ExploreMappings()
	if len(results) != 5 {
		t.Fatalf("mappings = %d, want 5", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].PerceptionLatency < results[i-1].PerceptionLatency {
			t.Fatal("not sorted")
		}
	}
	best := results[0].Mapping
	if best != OurDesign() {
		t.Fatalf("best mapping = %+v, want our design", best)
	}
}

// TestExploreMappingsDeterministicTieBreak pins the secondary sort key: the
// TX2-bottlenecked pairs (TX2/GPU, TX2/TX2) land on identical perception
// latency, and the mapping names must break the tie the same way on every
// call — the online scheduler's candidate ordering depends on it.
func TestExploreMappingsDeterministicTieBreak(t *testing.T) {
	first := ExploreMappings()
	iGPU, iTX2 := -1, -1
	for i, r := range first {
		switch r.Mapping {
		case (Mapping{SceneUnderstanding: "TX2", Localization: "GPU"}):
			iGPU = i
		case (Mapping{SceneUnderstanding: "TX2", Localization: "TX2"}):
			iTX2 = i
		}
	}
	if iGPU < 0 || iTX2 < 0 {
		t.Fatalf("TX2 pairs missing from exploration: %+v", first)
	}
	if first[iGPU].PerceptionLatency != first[iTX2].PerceptionLatency {
		t.Fatalf("expected a genuine tie, got %v vs %v",
			first[iGPU].PerceptionLatency, first[iTX2].PerceptionLatency)
	}
	if iGPU > iTX2 {
		t.Fatal("tie broken against localization name order: TX2/GPU must precede TX2/TX2")
	}
	for trial := 0; trial < 10; trial++ {
		again := ExploreMappings()
		for i := range first {
			if again[i].Mapping != first[i].Mapping {
				t.Fatalf("exploration order unstable at %d: %+v vs %+v",
					i, again[i].Mapping, first[i].Mapping)
			}
		}
	}
}

// TestContendedTruthTable: contention means scene understanding and
// localization time-share the *same GPU* — not merely the same processor
// (the paper's TX2/TX2 rows carry no such factor), and not different
// processors of any kind.
func TestContendedTruthTable(t *testing.T) {
	cat := Catalog()
	cases := []struct {
		su, loc string
		want    bool
	}{
		{"GPU", "GPU", true},
		{"GPU", "FPGA", false},
		{"GPU", "TX2", false},
		{"TX2", "TX2", false}, // shared, but not the GPU
		{"CPU", "CPU", false},
		{"TX2", "GPU", false},
		{"XPU", "GPU", false}, // unknown processors never contend
		{"GPU", "XPU", false},
	}
	for _, c := range cases {
		m := Mapping{SceneUnderstanding: c.su, Localization: c.loc}
		if got := Contended(cat, m); got != c.want {
			t.Errorf("Contended(%s/%s) = %v, want %v", c.su, c.loc, got, c.want)
		}
	}
	// And EvaluateMapping's contended score actually reflects it: GPU/GPU
	// must be slower than GPU/FPGA by more than the localization delta.
	shared, err := EvaluateMapping(Mapping{SceneUnderstanding: "GPU", Localization: "GPU"}, cat)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := EvaluateMapping(OurDesign(), cat)
	if err != nil {
		t.Fatal(err)
	}
	if shared.PerceptionLatency <= time.Duration(float64(ours.PerceptionLatency)*ContentionFactor*0.99) {
		t.Fatalf("GPU/GPU (%v) does not carry the contention factor over GPU/FPGA (%v)",
			shared.PerceptionLatency, ours.PerceptionLatency)
	}
}

// TestBatchingCapability pins which processors the scheduler may batch
// multi-camera (and cross-vehicle) inference on: the CUDA runtimes batch,
// the spatial FPGA accelerator and the CPU fallback do not.
func TestBatchingCapability(t *testing.T) {
	cat := Catalog()
	for name, want := range map[string]bool{"GPU": true, "TX2": true, "FPGA": false, "CPU": false} {
		if cat[name].Batching != want {
			t.Errorf("%s Batching = %v, want %v", name, cat[name].Batching, want)
		}
	}
}

func TestEvaluateMappingErrors(t *testing.T) {
	if _, err := EvaluateMapping(Mapping{SceneUnderstanding: "QPU", Localization: "GPU"}, Catalog()); err == nil {
		t.Fatal("unknown processor should error")
	}
}

func TestOnlyFPGAIsAutomotiveWithSensors(t *testing.T) {
	// Sec. III-C / V-A: the FPGA is chosen partly because it is
	// automotive-grade and has mature sensor interfaces.
	cat := Catalog()
	if !cat["FPGA"].Automotive || !cat["FPGA"].SensorInterface {
		t.Fatal("FPGA must be automotive-grade with sensor interfaces")
	}
	if cat["GPU"].SensorInterface || cat["CPU"].SensorInterface {
		t.Fatal("server parts must lack sensor interfaces")
	}
	if !cat["CPU"].CANInterface {
		t.Fatal("the server hosts the mature CAN stack")
	}
}

func TestAcceleratorResources(t *testing.T) {
	r := LocalizationAcceleratorResources()
	if r.LUTs != 200_000 || r.DSPs != 800 || r.PowerW >= 6 {
		t.Fatalf("resources = %+v", r)
	}
}

func TestQuantizedCatalog(t *testing.T) {
	if QuantSpeedup < 1.5 {
		t.Fatalf("QuantSpeedup = %v below the documented 1.5x floor", QuantSpeedup)
	}
	ref := Catalog()
	q := QuantizedCatalog()
	for name, p := range q {
		for _, task := range []Task{TaskDepth, TaskDetection, TaskTracking} {
			lat, ok := p.Latency[task]
			if !ok {
				continue
			}
			if want := QuantizedLatency(ref[name].Latency[task]); lat != want {
				t.Fatalf("%s/%v quantized to %v, want %v", name, task, lat, want)
			}
		}
		// Localization stays at the float-path point: the FPGA accelerator
		// is already a fixed-point dataflow.
		if loc, ok := p.Latency[TaskLocalization]; ok && loc != ref[name].Latency[TaskLocalization] {
			t.Fatalf("%s localization must not be rescaled", name)
		}
	}
	// The deployed mapping must get cheaper, and stay valid.
	refRes, err1 := EvaluateMapping(OurDesign(), ref)
	qRes, err2 := EvaluateMapping(OurDesign(), q)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if qRes.PerceptionLatency >= refRes.PerceptionLatency {
		t.Fatalf("quantized perception %v not faster than float %v",
			qRes.PerceptionLatency, refRes.PerceptionLatency)
	}
}

func TestTaskStrings(t *testing.T) {
	if TaskDepth.String() == "" || Task(99).String() == "" {
		t.Fatal("empty task string")
	}
}
