package platform

import (
	"testing"
	"time"
)

const frame1080p = 1920 * 1080 * 2

func TestMobileSoCCopyOverheadUpTo3ms(t *testing.T) {
	// Sec. V-A: CPU-mediated copies cost "up to 3 ms" per frame.
	p := MobileSoCDataPath()
	oh := p.FrameOverhead(frame1080p)
	if oh < 1*time.Millisecond || oh > 4*time.Millisecond {
		t.Fatalf("mobile SoC copy overhead = %v, want ~2-3 ms", oh)
	}
}

func TestMobileSoCCoordinationPowerAboutOneWatt(t *testing.T) {
	// Sec. V-A: "an extra 1 W power overhead" at camera rate.
	p := MobileSoCDataPath()
	w := p.SustainedPowerW(frame1080p, 30*4) // 4 cameras at 30 FPS
	if w < 0.2 || w > 1.01 {
		t.Fatalf("coordination power = %v W, want O(1)", w)
	}
	if p.FrameEnergyJ(frame1080p) <= 0 {
		t.Fatal("energy should be positive")
	}
}

func TestInSituFPGAPathNearFree(t *testing.T) {
	f := InSituFPGADataPath()
	if oh := f.FrameOverhead(frame1080p); oh != 0 {
		t.Fatalf("in-situ overhead = %v, want 0", oh)
	}
	if f.FrameEnergyJ(frame1080p) != 0 {
		t.Fatal("in-situ energy should be 0")
	}
	m := MobileSoCDataPath()
	if m.FrameOverhead(frame1080p) <= f.FrameOverhead(frame1080p) {
		t.Fatal("mobile SoC path must cost more than in-situ")
	}
}

func TestSustainedPowerSaturates(t *testing.T) {
	p := MobileSoCDataPath()
	// Absurd frame rate: duty clamps at 1, power at CoordinationPowerW.
	if w := p.SustainedPowerW(frame1080p, 1e6); w != p.CoordinationPowerW {
		t.Fatalf("saturated power = %v", w)
	}
}
