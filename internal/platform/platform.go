// Package platform models the hardware design space of Sec. V: the four
// candidate processors (server CPU, discrete GPU, Nvidia TX2-class mobile
// SoC, embedded FPGA) with per-task latency and energy operating points
// calibrated to the paper's measurements (Fig. 6), a GPU-contention model,
// and the perception mapping-space explorer that reproduces Fig. 8.
//
// The operating points are published measurements, not simulations: the
// paper's Fig. 6/8 are tables of measured values, and this package lets the
// mapping logic act on them (see DESIGN.md, substitutions).
package platform

import (
	"fmt"
	"sort"
	"time"
)

// Task identifies one perception/planning workload.
type Task int

// The tasks of Table III / Fig. 6.
const (
	TaskDepth Task = iota
	TaskDetection
	TaskTracking
	TaskLocalization
	TaskPlanning
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case TaskDepth:
		return "depth-estimation"
	case TaskDetection:
		return "object-detection"
	case TaskTracking:
		return "tracking"
	case TaskLocalization:
		return "localization"
	case TaskPlanning:
		return "planning"
	default:
		return fmt.Sprintf("task(%d)", int(t))
	}
}

// Processor is one hardware option with measured operating points.
type Processor struct {
	Name string
	// Latency per task; absent tasks cannot run on this processor.
	Latency map[Task]time.Duration
	// PowerW is the active power used for energy = power × latency.
	PowerW float64
	// IdlePowerW matters for the always-on energy model.
	IdlePowerW float64
	// CostUSD is the unit cost.
	CostUSD float64
	// SensorInterface marks mature MIPI/CSI-class camera interfaces and
	// ISP hardware (embedded FPGAs have them; servers don't).
	SensorInterface bool
	// CANInterface marks a mature CAN stack (the server has one; that is
	// why planning maps there).
	CANInterface bool
	// Automotive marks automotive-grade qualification (Sec. III-C).
	Automotive bool
	// Batching marks processors whose inference runtime amortizes
	// multi-image batches (layer-major batched forwards, DESIGN.md §10);
	// the online scheduler only batches multi-camera inference when scene
	// understanding sits on one of these.
	Batching bool
}

// Energy returns the energy of running the task once, in joules, and
// whether the processor supports the task.
func (p *Processor) Energy(t Task) (float64, bool) {
	lat, ok := p.Latency[t]
	if !ok {
		return 0, false
	}
	return p.PowerW * lat.Seconds(), true
}

// Catalog returns the four platforms with the paper's measured operating
// points (Fig. 6a latencies; energies follow from the active powers, e.g.
// depth on the CPU: 12.892 s × ~94 W ≈ 1207 J as annotated in Fig. 6b).
func Catalog() map[string]*Processor {
	return map[string]*Processor{
		"CPU": {
			Name: "CPU", // Intel Coffee Lake, 3.0 GHz, 9 MB LLC
			Latency: map[Task]time.Duration{
				TaskDepth:        12892 * time.Millisecond,
				TaskDetection:    2000 * time.Millisecond,
				TaskTracking:     100 * time.Millisecond,
				TaskLocalization: 90 * time.Millisecond,
				TaskPlanning:     3 * time.Millisecond,
			},
			PowerW: 94, IdlePowerW: 20, CostUSD: 400,
			CANInterface: true,
		},
		"GPU": {
			Name: "GPU", // Nvidia GTX 1060
			Latency: map[Task]time.Duration{
				TaskDepth:        40 * time.Millisecond,
				TaskDetection:    60 * time.Millisecond,
				TaskTracking:     17 * time.Millisecond,
				TaskLocalization: 31 * time.Millisecond,
			},
			PowerW: 120, IdlePowerW: 11, CostUSD: 300,
			Batching: true,
		},
		"TX2": {
			Name: "TX2", // Nvidia Jetson TX2 (Pascal GPU + Cortex-A57)
			Latency: map[Task]time.Duration{
				TaskDepth:        170 * time.Millisecond,
				TaskDetection:    570 * time.Millisecond,
				TaskTracking:     60 * time.Millisecond,
				TaskLocalization: 104200 * time.Microsecond,
			},
			PowerW: 12, IdlePowerW: 2, CostUSD: 600,
			SensorInterface: true,
			Batching:        true,
		},
		"FPGA": {
			Name: "FPGA", // Xilinx Zynq UltraScale+ (automotive grade)
			Latency: map[Task]time.Duration{
				TaskDepth:        120 * time.Millisecond,
				TaskDetection:    200 * time.Millisecond,
				TaskTracking:     30 * time.Millisecond,
				TaskLocalization: 24 * time.Millisecond,
			},
			PowerW: 6, IdlePowerW: 1.5, CostUSD: 250,
			SensorInterface: true,
			Automotive:      true,
		},
	}
}

// QuantSpeedup is the fixed-point speedup backing the quantized operating
// points: int8 fused kernels (conv+bias+ReLU, FC, SAD cost aggregation, ISP
// pixel chain) against their float32 counterparts. It is a documented
// constant rather than a runtime measurement so simulated latencies stay
// reproducible across machines; BenchmarkQuantSpeedup validates the floor
// (fused int8 conv/FC ≥ 1.5× the float path) on every bench run. The
// second-generation SWAR/GEMM kernels (DESIGN.md §10) measure 3.8× on
// end-to-end detection and 12× on the stereo matcher; 2.5 keeps the
// operating-point scaling well inside the measured envelope while staying
// conservative about memory-bound embedded targets.
const QuantSpeedup = 2.5

// QuantizedLatency maps a float-path operating point to its fixed-point
// counterpart.
func QuantizedLatency(d time.Duration) time.Duration {
	return time.Duration(float64(d) / QuantSpeedup)
}

// QuantizedCatalog returns the catalog with the dense perception tasks
// (depth, detection, tracking) moved to their int8 fixed-point operating
// points. Localization is untouched — the FPGA accelerator already runs a
// fixed-point dataflow, which is exactly why its operating point is this
// cheap — and planning is not a dense kernel.
func QuantizedCatalog() map[string]*Processor {
	cat := Catalog()
	for _, p := range cat {
		for _, t := range []Task{TaskDepth, TaskDetection, TaskTracking} {
			if lat, ok := p.Latency[t]; ok {
				p.Latency[t] = QuantizedLatency(lat)
			}
		}
	}
	return cat
}

// TX2CumulativePerception returns the serial latency of running all three
// perception tasks on the TX2 (the paper: 844.2 ms — far beyond real-time).
func TX2CumulativePerception() time.Duration {
	tx2 := Catalog()["TX2"]
	return tx2.Latency[TaskDepth] + tx2.Latency[TaskDetection] + tx2.Latency[TaskLocalization]
}

// Mapping assigns the two perception task groups to processors.
type Mapping struct {
	// SceneUnderstanding hosts depth + detection (+ visual tracking
	// fallback).
	SceneUnderstanding string
	// Localization hosts the VIO accelerator.
	Localization string
}

// PerceptionResult is the evaluation of one mapping.
type PerceptionResult struct {
	Mapping Mapping
	// SceneUnderstandingLatency after contention.
	SceneUnderstandingLatency time.Duration
	// LocalizationLatency after contention.
	LocalizationLatency time.Duration
	// PerceptionLatency = max of the two parallel groups.
	PerceptionLatency time.Duration
}

// gpuContention inflates co-located scene understanding: the paper measures
// it at 77 ms alone on the GPU but 120 ms when localization shares the GPU.
// The catalog's 31 ms GPU localization is already the shared-GPU
// measurement (offloading to the FPGA takes it to 24 ms), so localization
// is not inflated further.
const gpuContentionFactor = 120.0 / 77.0

// ContentionFactor exposes the GPU co-location inflation for candidate
// scoring (the online scheduler applies it to every contended candidate,
// not just the chosen mapping, so scoring and EvaluateMapping agree).
const ContentionFactor = gpuContentionFactor

// Contended reports whether a mapping co-locates scene understanding and
// localization on the GPU — the one pairing the paper measures contention
// for. EvaluateMapping and the scheduler's candidate scoring both use it,
// so the two can never diverge.
func Contended(cat map[string]*Processor, m Mapping) bool {
	su, ok1 := cat[m.SceneUnderstanding]
	loc, ok2 := cat[m.Localization]
	return ok1 && ok2 && su == loc && su.Name == "GPU"
}

// EvaluateMapping computes the perception latency of a mapping, applying
// GPU contention when both groups share the GPU. Scene understanding is
// depth ∥ (detection → tracking); the slower chain dictates.
func EvaluateMapping(m Mapping, cat map[string]*Processor) (PerceptionResult, error) {
	su, ok := cat[m.SceneUnderstanding]
	if !ok {
		return PerceptionResult{}, fmt.Errorf("platform: unknown processor %q", m.SceneUnderstanding)
	}
	loc, ok := cat[m.Localization]
	if !ok {
		return PerceptionResult{}, fmt.Errorf("platform: unknown processor %q", m.Localization)
	}
	depth, ok1 := su.Latency[TaskDepth]
	det, ok2 := su.Latency[TaskDetection]
	trk, ok3 := su.Latency[TaskTracking]
	locLat, ok4 := loc.Latency[TaskLocalization]
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return PerceptionResult{}, fmt.Errorf("platform: mapping %+v unsupported", m)
	}
	suLat := det + trk
	if depth > suLat {
		suLat = depth
	}
	if Contended(cat, m) {
		suLat = time.Duration(float64(suLat) * gpuContentionFactor)
	}
	perception := suLat
	if locLat > perception {
		perception = locLat
	}
	return PerceptionResult{
		Mapping:                   m,
		SceneUnderstandingLatency: suLat,
		LocalizationLatency:       locLat,
		PerceptionLatency:         perception,
	}, nil
}

// ExploreMappings evaluates the Fig. 8 mapping strategies and returns them
// sorted by perception latency (best first).
func ExploreMappings() []PerceptionResult {
	cat := Catalog()
	mappings := []Mapping{
		{SceneUnderstanding: "GPU", Localization: "FPGA"}, // our design
		{SceneUnderstanding: "GPU", Localization: "GPU"},
		{SceneUnderstanding: "GPU", Localization: "TX2"},
		{SceneUnderstanding: "TX2", Localization: "GPU"},
		{SceneUnderstanding: "TX2", Localization: "TX2"},
	}
	out := make([]PerceptionResult, 0, len(mappings))
	for _, m := range mappings {
		r, err := EvaluateMapping(m, cat)
		if err != nil {
			continue
		}
		out = append(out, r)
	}
	// Ties are real (TX2 scene understanding bottlenecks TX2/GPU and
	// TX2/TX2 identically), so the mapping names break them — sort.Slice is
	// unstable and would otherwise pin the order to the sort's internals.
	sort.Slice(out, func(i, j int) bool {
		if out[i].PerceptionLatency != out[j].PerceptionLatency {
			return out[i].PerceptionLatency < out[j].PerceptionLatency
		}
		a, b := out[i].Mapping, out[j].Mapping
		if a.SceneUnderstanding != b.SceneUnderstanding {
			return a.SceneUnderstanding < b.SceneUnderstanding
		}
		return a.Localization < b.Localization
	})
	return out
}

// OurDesign returns the deployed mapping (scene understanding on the GPU,
// localization offloaded to the FPGA).
func OurDesign() Mapping {
	return Mapping{SceneUnderstanding: "GPU", Localization: "FPGA"}
}

// FPGALocalizationResources documents the localization accelerator's FPGA
// footprint (Sec. V-B2).
type FPGAResources struct {
	LUTs, Registers, BRAMs, DSPs int
	PowerW                       float64
}

// LocalizationAcceleratorResources returns the deployed accelerator's
// footprint: ~200K LUTs, 120K registers, 600 BRAMs, 800 DSPs, < 6 W.
func LocalizationAcceleratorResources() FPGAResources {
	return FPGAResources{LUTs: 200_000, Registers: 120_000, BRAMs: 600, DSPs: 800, PowerW: 5.8}
}
