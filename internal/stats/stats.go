// Package stats provides the summary statistics used throughout the SoV
// characterization: percentile summaries (Fig. 10), histograms (Fig. 4a),
// and streaming mean/variance accumulators.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations and answers order statistics. It keeps the
// raw values; the SoV characterization runs are small enough (thousands of
// frames) that exact percentiles are preferable to sketches.
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns an empty sample.
func NewSample() *Sample { return &Sample{} }

// Observe records one value.
func (s *Sample) Observe(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Std returns the population standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Summary is a fixed set of order statistics for reporting.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P90, P99         float64
}

// Summarize computes the Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		Std:    s.Std(),
		Min:    s.Min(),
		Median: s.Median(),
		Max:    s.Max(),
		P90:    s.Quantile(0.90),
		P99:    s.Quantile(0.99),
	}
}

// String formats the summary on one line (values as-is, caller picks units).
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		sm.N, sm.Mean, sm.Std, sm.Min, sm.Median, sm.P90, sm.P99, sm.Max)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); values outside the
// range are clamped into the first/last bin so no observation is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Render draws a terminal bar chart, one row per bin, scaled to width.
func (h *Histogram) Render(width int) string {
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "%10.1f | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	return b.String()
}

// Welford is a streaming mean/variance accumulator for long simulations
// where retaining raw values is unnecessary.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Observe records one value.
func (w *Welford) Observe(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the running population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }
