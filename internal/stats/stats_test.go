package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Observe(v)
	}
	if s.N() != 5 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("median = %v", s.Median())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Std()-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std = %v", s.Std())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := NewSample()
	s.Observe(0)
	s.Observe(10)
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("q50 = %v", got)
	}
	if got := s.Quantile(0.25); got != 2.5 {
		t.Fatalf("q25 = %v", got)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Fatalf("q<0 = %v", got)
	}
	if got := s.Quantile(2); got != 10 {
		t.Fatalf("q>1 = %v", got)
	}
}

func TestEmptySample(t *testing.T) {
	s := NewSample()
	if s.Mean() != 0 || s.Std() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty sample should return zeros")
	}
	sm := s.Summarize()
	if sm.N != 0 {
		t.Fatal("empty summary N")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewSample()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Observe(v)
		}
		if s.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObserveAfterQuantile(t *testing.T) {
	s := NewSample()
	s.Observe(5)
	_ = s.Median()
	s.Observe(1) // must re-sort
	if s.Min() != 1 {
		t.Fatalf("min after re-observe = %v", s.Min())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 3.9, 9.9, -5, 50} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	// -5 clamps into bin 0; 50 clamps into bin 4.
	if h.Counts[0] != 3 { // 0.5, 1, -5
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 50
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if h.BinCenter(0) != 1 {
		t.Fatalf("bin center = %v", h.BinCenter(0))
	}
	if h.Render(20) == "" {
		t.Fatal("render empty")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestWelfordMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSample()
	var w Welford
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64()*3 + 7
		s.Observe(v)
		w.Observe(v)
	}
	if math.Abs(s.Mean()-w.Mean()) > 1e-9 {
		t.Fatalf("mean mismatch %v vs %v", s.Mean(), w.Mean())
	}
	if math.Abs(s.Std()-w.Std()) > 1e-9 {
		t.Fatalf("std mismatch %v vs %v", s.Std(), w.Std())
	}
	if w.N() != 10000 {
		t.Fatalf("n = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty welford should be zero")
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSample()
	s.Observe(1)
	if s.Summarize().String() == "" {
		t.Fatal("empty string")
	}
}
