package experiments

import (
	"fmt"
	"strings"
	"time"

	"sov/internal/core"
)

// This file regenerates the Fig. 6/8 mapping tables under *dynamic* traffic
// with the online heterogeneous scheduler in the loop (DESIGN.md §13). The
// static rows pin the scheduler to one mapping (exactly what the paper's
// design-time exploration commits to); the online rows let it remap, switch
// quant/float operating points under thermal pressure, and manage the RPR
// front-end while the task mix shifts underneath it. Everything is
// virtual-time deterministic, so the emitted numbers are byte-stable across
// machines and worker counts — which is why BENCH_sched.json can be an
// exact-diff regression baseline.

const (
	schedDynamicDuration = 240 * time.Second
	schedSteadyDuration  = 120 * time.Second
)

// schedDynamicConfig is the shared config of every dynamic-traffic row:
// hot enclosure (45 C ambient — parked in the sun, the paper's Sec. III-C
// environment concern), with complexity-forced keyframes so dense traffic
// shifts the RPR swap economics for every row alike.
func schedDynamicConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Sched = true
	cfg.AmbientC = 45
	cfg.DynamicKeyframe = true
	return cfg
}

// schedRow is one mapping strategy evaluated under dynamic traffic.
type schedRow struct {
	name   string
	report *core.Report
}

func (r schedRow) p50() float64 { return r.report.Perception.Quantile(0.5) }
func (r schedRow) p99() float64 { return r.report.Perception.Quantile(0.99) }

// runSchedDynamic executes the dynamic-traffic sweep: the Fig. 8 static
// mappings as pinned baselines, then the online scheduler from the deployed
// start and from a deliberately bad (contended) start.
func runSchedDynamic(seed int64) []schedRow {
	type variant struct {
		name    string
		mapping string
		static  bool
	}
	variants := []variant{
		{"static GPU/FPGA (our design)", "GPU/FPGA", true},
		{"static GPU/GPU (contended)", "GPU/GPU", true},
		{"static GPU/TX2", "GPU/TX2", true},
		{"static TX2/TX2", "TX2/TX2", true},
		{"online", "GPU/FPGA", false},
		{"online (from GPU/GPU)", "GPU/GPU", false},
	}
	rows := make([]schedRow, 0, len(variants))
	for _, v := range variants {
		cfg := schedDynamicConfig(seed)
		cfg.SchedMapping = v.mapping
		cfg.SchedStatic = v.static
		w := core.DynamicTrafficScenario(seed)
		rep := core.New(cfg, w).Run(schedDynamicDuration)
		rows = append(rows, schedRow{name: v.name, report: rep})
	}
	return rows
}

// runSchedSteady measures the scheduler's overhead under steady cruising at
// the deployed operating point: the calm enclosure never pushes the thermal
// model near its ceiling, every decision holds the deployed mapping, and the
// draw multipliers are exactly 1.0 — so the online row must match the
// scheduler-off baseline to the bit.
func runSchedSteady(seed int64) (base, online *core.Report) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Sched = false
	base = core.New(cfg, core.CruiseScenario(seed)).Run(schedSteadyDuration)

	cfg = core.DefaultConfig()
	cfg.Seed = seed
	cfg.Sched = true
	online = core.New(cfg, core.CruiseScenario(seed)).Run(schedSteadyDuration)
	return base, online
}

// runSchedMulticam compares three cameras run sequentially (no scheduler)
// against the scheduler's contention-aware batched placement (scene
// understanding on the batching-capable GPU amortizes the extra images at
// the marginal batch cost).
func runSchedMulticam(seed int64) (seq, batched *core.Report) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Sched = false
	cfg.Cameras = 3
	seq = core.New(cfg, core.CruiseScenario(seed)).Run(schedSteadyDuration)

	cfg = core.DefaultConfig()
	cfg.Seed = seed
	cfg.Sched = true
	cfg.Cameras = 3
	batched = core.New(cfg, core.CruiseScenario(seed)).Run(schedSteadyDuration)
	return seq, batched
}

// SchedDynamic renders the dynamic-traffic mapping tables: the Fig. 6/8
// exploration redone online, plus the steady-load overhead and multi-camera
// batching checks.
func SchedDynamic(seed int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online scheduler — Fig. 6/8 regenerated under dynamic traffic (%v, ambient 45C)\n",
		schedDynamicDuration)
	fmt.Fprintf(&b, "  %-28s %-14s %-14s %-8s %-8s %-10s %s\n",
		"mapping strategy", "p50 percep", "p99 percep", "remaps", "op-sw", "rpr-swaps", "end state")
	for _, r := range runSchedDynamic(seed) {
		sc := r.report.Sched
		fmt.Fprintf(&b, "  %-28s %8.1f ms   %8.1f ms   %-8d %-8d %-10d %s quant=%v sticky=%v temp=%.1fC\n",
			r.name, r.p50(), r.p99(), sc.Remaps, sc.OpSwitches, sc.Swaps,
			sc.Mapping, sc.Quantized, sc.Sticky, sc.TempC)
	}

	base, online := runSchedSteady(seed)
	delta := 100 * (online.Perception.Quantile(0.5)/base.Perception.Quantile(0.5) - 1)
	fmt.Fprintf(&b, "steady cruise overhead (%v, ambient 25C): baseline p50=%.1f ms, online p50=%.1f ms (%+.2f%%)\n",
		schedSteadyDuration, base.Perception.Quantile(0.5), online.Perception.Quantile(0.5), delta)

	seq, batched := runSchedMulticam(seed)
	fmt.Fprintf(&b, "3-camera inference: sequential p50=%.1f ms p99=%.1f ms, scheduler-batched p50=%.1f ms p99=%.1f ms\n",
		seq.Perception.Quantile(0.5), seq.Perception.Quantile(0.99),
		batched.Perception.Quantile(0.5), batched.Perception.Quantile(0.99))
	return b.String()
}

// SchedBenchJSON emits the machine-readable BENCH_sched.json content. The
// runs are virtual-time deterministic, so scripts/bench_sched.sh --check can
// regenerate and exact-diff this output against the committed snapshot.
func SchedBenchJSON(seed int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "{\n  \"experiment\": \"sched_dynamic_traffic\",\n  \"seed\": %d,\n", seed)
	fmt.Fprintf(&b, "  \"dynamic\": {\n    \"scenario\": \"DynamicTrafficScenario ambient=45C dynamic-keyframe %s\",\n    \"rows\": [\n",
		schedDynamicDuration)
	rows := runSchedDynamic(seed)
	for i, r := range rows {
		sc := r.report.Sched
		fmt.Fprintf(&b, "      {\"name\": %q, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"remaps\": %d, \"op_switches\": %d, \"rpr_swaps\": %d, \"swap_ms\": %.3f, \"end_mapping\": %q, \"end_quant\": %v}",
			r.name, r.p50(), r.p99(), sc.Remaps, sc.OpSwitches, sc.Swaps,
			float64(sc.SwapTotal)/1e6, sc.Mapping, sc.Quantized)
		if i < len(rows)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("    ]\n  },\n")

	base, online := runSchedSteady(seed)
	bp, op := base.Perception.Quantile(0.5), online.Perception.Quantile(0.5)
	fmt.Fprintf(&b, "  \"steady\": {\"baseline_p50_ms\": %.3f, \"online_p50_ms\": %.3f, \"delta_pct\": %.3f},\n",
		bp, op, 100*(op/bp-1))

	seq, batched := runSchedMulticam(seed)
	fmt.Fprintf(&b, "  \"multicam\": {\"cameras\": 3, \"sequential_p99_ms\": %.3f, \"batched_p99_ms\": %.3f}\n",
		seq.Perception.Quantile(0.99), batched.Perception.Quantile(0.99))
	b.WriteString("}\n")
	return b.String()
}
