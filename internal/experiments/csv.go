package experiments

import (
	"fmt"
	"strings"
	"time"

	"sov/internal/models"
	"sov/internal/sensorsync"
)

// SeriesCSV emits the sweep figures' data series in CSV form for external
// plotting: Fig. 3a (latency budget vs distance), Fig. 3b (driving time vs
// PAD), and Fig. 11a (depth error vs sync offset, analytic series).
func SeriesCSV() string {
	var b strings.Builder

	lm := models.DefaultLatencyModel()
	b.WriteString("figure,x,y\n")
	for _, p := range lm.RequirementCurve(4, 10, 25) {
		fmt.Fprintf(&b, "fig3a_budget_ms,%.3f,%.3f\n", p.Distance, p.Budget.Seconds()*1000)
	}

	em := models.DefaultEnergyModel()
	for pad := 0.15; pad <= 0.3501; pad += 0.01 {
		fmt.Fprintf(&b, "fig3b_reduced_h,%.3f,%.4f\n", pad, em.ReducedDrivingTimeHours(pad))
	}

	for ms := 0; ms <= 150; ms += 10 {
		e := sensorsync.AnalyticDepthError(time.Duration(ms)*time.Millisecond, 5, 1.2, 25)
		fmt.Fprintf(&b, "fig11a_depth_err_m,%d,%.4f\n", ms, e)
	}
	return b.String()
}
