// Package experiments regenerates every table and figure of the paper's
// evaluation as text reports. Each Fig*/Table* function runs the underlying
// systems (not canned numbers, except where the paper's own measured
// operating points are the input — see DESIGN.md) and prints the same rows
// or series the paper reports. cmd/sovbench prints them all; the root
// bench_test.go wraps each in a testing.B target.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sov/internal/cachesim"
	"sov/internal/canbus"
	"sov/internal/cloud"
	"sov/internal/core"
	"sov/internal/mathx"
	"sov/internal/models"
	"sov/internal/obs"
	"sov/internal/platform"
	"sov/internal/pointcloud"
	"sov/internal/rpr"
	"sov/internal/sensors"
	"sov/internal/sensorsync"
	"sov/internal/sim"
	"sov/internal/vehicle"
	"sov/internal/vio"
	"sov/internal/world"
)

// Fig2LatencyChain demonstrates the Eq. 1 latency chain at the deployed
// parameters (Fig. 2).
func Fig2LatencyChain() string {
	m := models.DefaultLatencyModel()
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — end-to-end latency model (v=%.1f m/s, a=%.1f m/s2)\n", m.Speed, m.BrakeDecel)
	fmt.Fprintf(&b, "  Tdata=%v  Tmech=%v  Tstop=%v  braking distance=%.2f m\n",
		m.DataLatency, m.MechLatency, m.StopTime(), m.BrakingDistance())
	for _, tc := range []time.Duration{30 * time.Millisecond, 149 * time.Millisecond, 164 * time.Millisecond, 740 * time.Millisecond} {
		fmt.Fprintf(&b, "  Tcomp=%-6v -> stopping distance %.2f m (compute share %.0f%%)\n",
			tc, m.StoppingDistance(tc), 100*m.ComputeShare(tc))
	}
	return b.String()
}

// Fig3aRequirement sweeps the computing-latency budget against object
// distance (Fig. 3a).
func Fig3aRequirement() string {
	m := models.DefaultLatencyModel()
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3a — computing latency requirement vs object distance\n")
	fmt.Fprintf(&b, "  %-12s %s\n", "distance(m)", "budget(ms)")
	for _, p := range m.RequirementCurve(4, 10, 13) {
		fmt.Fprintf(&b, "  %-12.1f %.0f\n", p.Distance, p.Budget.Seconds()*1000)
	}
	fmt.Fprintf(&b, "  markers: 164 ms mean -> avoid >= %.2f m; 740 ms worst -> avoid >= %.2f m; reactive 30 ms -> %.2f m; floor %.2f m\n",
		m.AvoidableDistance(164*time.Millisecond), m.AvoidableDistance(740*time.Millisecond),
		m.AvoidableDistance(30*time.Millisecond), m.BrakingDistance())
	return b.String()
}

// Fig3bDrivingTime sweeps reduced driving time against PAD with the
// paper's four markers (Fig. 3b).
func Fig3bDrivingTime() string {
	em := models.DefaultEnergyModel()
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3b — reduced driving time vs PAD (E=%.0f kWh, Pv=%.1f kW)\n", em.CapacityKWh, em.VehiclePowerKW)
	fmt.Fprintf(&b, "  %-10s %s\n", "PAD(kW)", "reduced(h)")
	for pad := 0.15; pad <= 0.351; pad += 0.02 {
		fmt.Fprintf(&b, "  %-10.2f %.2f\n", pad, em.ReducedDrivingTimeHours(pad))
	}
	base := models.DefaultPowerBudget().TotalKW()
	lidar := 0.0
	for _, c := range models.WaymoLiDARSuite() {
		lidar += c.TotalW()
	}
	fmt.Fprintf(&b, "  markers: current (%.3f kW) %.2f h | +LiDAR %.2f h | +1 server idle %.2f h | +1 server full %.2f h\n",
		base,
		em.ReducedDrivingTimeHours(base),
		em.ReducedDrivingTimeHours(base+lidar/1000),
		em.ReducedDrivingTimeHours(base+models.ServerIdlePowerW/1000),
		em.ReducedDrivingTimeHours(base+models.ServerDynamicPowerW/1000))
	return b.String()
}

// Table1Power renders the Table I power breakdown.
func Table1Power() string {
	b := models.DefaultPowerBudget()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I — power breakdown\n%s", b.Render())
	fmt.Fprintf(&sb, "LiDAR comparison (not used): long-range %.0f W, short-range %.0f W\n",
		models.LongRangeLiDARPowerW, models.ShortRangeLiDARPowerW)
	return sb.String()
}

// Table2Cost renders the Table II cost comparison.
func Table2Cost() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II — our (camera-based) vehicle\n%s\n", models.DefaultCameraVehicleCost().Render())
	fmt.Fprintf(&sb, "LiDAR-based vehicle (e.g. Waymo-class)\n%s", models.DefaultLiDARVehicleCost().Render())
	tco := models.DefaultTCO()
	fmt.Fprintf(&sb, "TCO sketch: $%.0f/year -> $%.2f per trip\n", tco.AnnualUSD(), tco.CostPerTripUSD())
	return sb.String()
}

// Table3Algorithms inventories the algorithm suite (Table III) with the
// packages that implement each and the benchmark that measures it.
func Table3Algorithms() string {
	rows := [][3]string{
		{"Depth estimation", "ELAS-style support-point stereo (internal/vision)", "BenchmarkSupportPointStereo160x120"},
		{"Object detection", "CNN grid head + NMS (internal/nn, internal/detect)", "BenchmarkRunCNNFullPath"},
		{"Object tracking", "KCF w/ FFT (internal/track) + radar spatial sync (internal/fusion)", "BenchmarkKCFTrackerStep / BenchmarkSpatialSync"},
		{"Localization", "EKF VIO, odometry + map modes (internal/vio)", "BenchmarkPropagateIMU / BenchmarkUpdateCamera12Landmarks"},
		{"Planning", "MPC (internal/planning) vs EM-style DP+QP", "BenchmarkPlannerComparisonMPC / ...EM"},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — algorithms\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %-58s %s\n", r[0], r[1], r[2])
	}
	return b.String()
}

// Fig4aReuse runs LiDAR localization on two scenes and reports the
// irregular point-reuse histograms (Fig. 4a).
func Fig4aReuse(points int) string {
	rng := sim.NewRNG(11)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4a — point reuse frequency during LiDAR localization (%d pts/scan)\n", points)
	for frame, variant := range []int64{100, 200} {
		scan := pointcloud.GenerateScan(points, variant, rng.Fork())
		moved := scan.Transform(0.03, mathx.Vec3{X: 0.3})
		tree := pointcloud.Build(scan, nil)
		pointcloud.Localize(tree, moved, nil, 15, 2)
		h := tree.ReuseHistogram(200)
		keys := make([]int, 0, len(h))
		for k := range h {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		fmt.Fprintf(&b, "  frame %d: reuse-bin -> points: ", frame)
		for _, k := range keys {
			fmt.Fprintf(&b, "%d:%d ", k, h[k])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "  (reuse varies widely across points and between the two scenes)\n")
	return b.String()
}

// Fig4bTraffic measures off-chip traffic of the four point-cloud kernels
// normalized to the optimal (compulsory) traffic (Fig. 4b).
func Fig4bTraffic(points int) string {
	rng := sim.NewRNG(12)
	scan := pointcloud.GenerateScan(points, 42, rng.Fork())
	moved := scan.Transform(0.02, mathx.Vec3{X: 0.2})
	cacheCfg := cachesim.Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 8}

	run := func(name string, f func(c *cachesim.Cache)) string {
		c := cachesim.New(cacheCfg)
		f(c)
		s := c.Stats()
		return fmt.Sprintf("  %-16s traffic/optimal = %6.1fx (miss rate %.2f)\n", name, s.TrafficRatio(), s.MissRate())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4b — normalized off-chip memory traffic (%d-pt scans, scaled cache)\n", points)
	b.WriteString(run("localization", func(c *cachesim.Cache) {
		tree := pointcloud.Build(scan, c)
		c.Reset()
		pointcloud.Localize(tree, moved, c, 10, 2)
	}))
	b.WriteString(run("segmentation", func(c *cachesim.Cache) {
		tree := pointcloud.Build(scan, c)
		c.Reset()
		pointcloud.Segment(tree, scan, c, 0.6, 20)
	}))
	b.WriteString(run("recognition", func(c *cachesim.Cache) {
		tree := pointcloud.Build(scan, nil)
		clusters := pointcloud.Segment(tree, scan, nil, 0.6, 20)
		lib := []pointcloud.Descriptor{{}, {}}
		c.Reset()
		pointcloud.Recognize(scan, tree, c, clusters, lib)
	}))
	b.WriteString(run("reconstruction", func(c *cachesim.Cache) {
		tree := pointcloud.Build(scan, c)
		c.Reset()
		pointcloud.Reconstruct(tree, scan, c, 8)
	}))
	// Preprocessing kernels, for contrast: voxel filtering streams the
	// cloud once (hash grid), RANSAC samples it sparsely.
	b.WriteString(run("voxel-filter", func(c *cachesim.Cache) {
		pointcloud.VoxelDownsample(scan, c, 0.3)
	}))
	b.WriteString(run("ransac-ground", func(c *cachesim.Cache) {
		pointcloud.RansacGround(scan, c, 40, 0.08, sim.NewRNG(33))
	}))
	// Reference: the regular stencil access pattern of vision kernels
	// (Sec. III-D's contrast). A 3x3 convolution sweep over an image the
	// same size as the cloud streams rows with near-perfect reuse.
	b.WriteString(run("vision-stencil", func(c *cachesim.Cache) {
		StencilSweep(c, 200, points/200*3, 3)
	}))
	return b.String()
}

// StencilSweep drives the cache with a (2*half+1)² convolution access
// pattern over a w×h row-major float32 image — the "regular stencil"
// memory behaviour of vision kernels.
func StencilSweep(c *cachesim.Cache, w, h, half int) {
	const px = 4
	for y := half; y < h-half; y++ {
		for x := half; x < w-half; x++ {
			for dy := -half; dy <= half; dy++ {
				for dx := -half; dx <= half; dx++ {
					c.Access(int64(((y+dy)*w+(x+dx))*px), px)
				}
			}
		}
	}
}

// Fig6Platforms reports per-task latency and energy on the four platforms
// (Fig. 6a/6b).
func Fig6Platforms() string {
	cat := platform.Catalog()
	names := []string{"CPU", "GPU", "TX2", "FPGA"}
	tasks := []platform.Task{platform.TaskDepth, platform.TaskDetection, platform.TaskLocalization}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6a — latency (ms)\n  %-18s", "task")
	for _, n := range names {
		fmt.Fprintf(&b, "%10s", n)
	}
	fmt.Fprintln(&b)
	for _, t := range tasks {
		fmt.Fprintf(&b, "  %-18s", t)
		for _, n := range names {
			fmt.Fprintf(&b, "%10.1f", cat[n].Latency[t].Seconds()*1000)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "Fig. 6b — energy (J)\n  %-18s", "task")
	for _, n := range names {
		fmt.Fprintf(&b, "%10s", n)
	}
	fmt.Fprintln(&b)
	for _, t := range tasks {
		fmt.Fprintf(&b, "  %-18s", t)
		for _, n := range names {
			e, _ := cat[n].Energy(t)
			fmt.Fprintf(&b, "%10.2f", e)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "  TX2 cumulative perception: %.1f ms\n", platform.TX2CumulativePerception().Seconds()*1000)
	return b.String()
}

// Fig8Mappings reports the perception mapping exploration (Fig. 8).
func Fig8Mappings() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — perception mapping strategies\n")
	fmt.Fprintf(&b, "  %-24s %-14s %-14s %s\n", "mapping (SU/Loc)", "scene(ms)", "loc(ms)", "perception(ms)")
	for _, r := range platform.ExploreMappings() {
		fmt.Fprintf(&b, "  %-24s %-14.1f %-14.1f %.1f\n",
			r.Mapping.SceneUnderstanding+"/"+r.Mapping.Localization,
			r.SceneUnderstandingLatency.Seconds()*1000,
			r.LocalizationLatency.Seconds()*1000,
			r.PerceptionLatency.Seconds()*1000)
	}
	cat := platform.Catalog()
	shared, _ := platform.EvaluateMapping(platform.Mapping{SceneUnderstanding: "GPU", Localization: "GPU"}, cat)
	ours, _ := platform.EvaluateMapping(platform.OurDesign(), cat)
	fmt.Fprintf(&b, "  FPGA offload speedup: %.2fx perception\n",
		float64(shared.PerceptionLatency)/float64(ours.PerceptionLatency))
	return b.String()
}

// Fig9RPR compares the reconfiguration engine with the CPU-driven path
// (Fig. 9 / Sec. V-B3).
func Fig9RPR() string {
	eng := rpr.NewEngine(rpr.DefaultEngineConfig())
	cpu := rpr.DefaultCPUDriven()
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — runtime partial reconfiguration\n")
	for _, bs := range []rpr.Bitstream{rpr.BitstreamFeatureExtract, rpr.BitstreamFeatureTrack} {
		re := eng.Transfer(bs.Bytes)
		rc := cpu.Transfer(bs.Bytes)
		fmt.Fprintf(&b, "  %-16s %7d B: engine %8v (%6.1f MB/s, %.2f mJ) | CPU-driven %10v (%.0f KB/s)\n",
			bs.Name, bs.Bytes, re.Duration.Round(time.Microsecond), re.Throughput/1e6, re.EnergyJ*1000,
			rc.Duration.Round(time.Millisecond), rc.Throughput/1024)
	}
	res := rpr.EngineResources()
	fmt.Fprintf(&b, "  engine footprint: %d LUTs, %d FFs; FIFO %d B\n",
		res.LUTs, res.FFs, rpr.DefaultEngineConfig().FIFOBytes)
	return b.String()
}

// Fig10Characterization runs the SoV cruise and renders the latency
// distribution (Fig. 10a/b).
func Fig10Characterization(seed int64, duration time.Duration) (string, *core.Report) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	w := core.CruiseScenario(seed)
	rep := core.New(cfg, w).Run(duration)
	return "Fig. 10 — on-vehicle latency characterization\n" + rep.Render(), rep
}

// Fig10Instrumented is Fig10Characterization with the unified telemetry
// layer attached: any non-nil registry, span writer, or flight recorder is
// wired into the run (sovbench's -metrics/-spans/-blackbox flags). The
// caller owns closing the span writer and recorder.
func Fig10Instrumented(seed int64, duration time.Duration, reg *obs.Registry, spans *obs.SpanWriter, box *obs.FlightRecorder) (string, *core.Report) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	w := core.CruiseScenario(seed)
	s := core.New(cfg, w)
	if reg != nil {
		s.AttachMetrics(reg)
	}
	if spans != nil {
		s.AttachSpans(spans)
	}
	if box != nil {
		s.AttachFlightRecorder(box)
	}
	rep := s.Run(duration)
	return "Fig. 10 — on-vehicle latency characterization (instrumented)\n" + rep.Render(), rep
}

// Fig11aDepthSync sweeps stereo depth error against inter-camera sync
// error, both analytically and through the rendered stereo stack
// (Fig. 11a).
func Fig11aDepthSync() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11a — stereo depth error vs camera sync error (object at 5 m moving 1.2 m/s)\n")
	fmt.Fprintf(&b, "  %-12s %-14s %s\n", "offset(ms)", "analytic(m)", "rendered(m)")
	for _, ms := range []int{0, 10, 30, 50, 70, 90, 110, 130, 150} {
		off := time.Duration(ms) * time.Millisecond
		a := sensorsync.AnalyticDepthError(off, 5, 1.2, 25)
		r := sensorsync.DepthErrorAtOffset(off, 5, 1.2, 25)
		fmt.Fprintf(&b, "  %-12d %-14.2f %.2f\n", ms, a, r)
	}
	return b.String()
}

// Fig11bLocalizationSync runs the VIO loop with 0/20/40 ms camera–IMU
// offsets (Fig. 11b).
func Fig11bLocalizationSync() string {
	cfg := vio.DefaultConfig()
	imuCfg := sensors.DefaultIMUConfig()
	imuCfg.GyroBias = 0
	imuCfg.AccelBias = 0
	w := world.NewRing(20, sim.NewRNG(8))
	traj := vio.CircleTrajectory(20, 5.6)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11b — localization error vs camera–IMU sync error (20 m loop at 5.6 m/s, 4-seed mean)\n")
	fmt.Fprintf(&b, "  %-12s %-12s %-12s %s\n", "offset(ms)", "mean(m)", "p90(m)", "max(m)")
	for _, ms := range []int{0, 20, 40} {
		var mean, p90, max float64
		const seeds = 4
		for s := int64(0); s < seeds; s++ {
			res := vio.RunTrajectory(cfg, imuCfg, traj, w, vio.RunOptions{
				Duration:              60 * time.Second,
				CameraTimestampOffset: time.Duration(ms) * time.Millisecond,
			}, sim.NewRNG(9+s))
			mean += res.Errors.Mean() / seeds
			p90 += res.Errors.Quantile(0.9) / seeds
			max += res.MaxError / seeds
		}
		fmt.Fprintf(&b, "  %-12d %-12.2f %-12.2f %.2f\n", ms, mean, p90, max)
	}
	return b.String()
}

// Fig12SyncArchitecture compares software-only and hardware-collaborative
// synchronization (Fig. 12 / Sec. VI-A3).
func Fig12SyncArchitecture() string {
	sw := sensorsync.SoftwareSyncExperiment(20*time.Second, sim.NewRNG(13))
	hw := sensorsync.HardwareSyncExperiment(20*time.Second, sim.NewRNG(13))
	res := sensorsync.HardwareSynchronizerResources()
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 — camera–IMU pairing error\n")
	fmt.Fprintf(&b, "  software-only : mean %6.2f ms  p99 %6.2f ms  max %6.2f ms (%d frames)\n",
		sw.MeanMs, sw.P99Ms, sw.MaxMs, sw.Frames)
	fmt.Fprintf(&b, "  hardware sync : mean %6.2f ms  p99 %6.2f ms  max %6.2f ms (%d frames)\n",
		hw.MeanMs, hw.P99Ms, hw.MaxMs, hw.Frames)
	fmt.Fprintf(&b, "  synchronizer: %d LUTs, %d registers, %.0f mW, adds %v\n",
		res.LUTs, res.Registers, res.PowerW*1000, res.AddedLatency)
	return b.String()
}

// ReactivePathStudy sweeps sudden-obstacle appearance distances and reports
// outcomes (Sec. IV: reactive path avoids ~4.1-4.8 m where the proactive
// path needs ~5+ m; inside the ~3.9 m braking floor nothing helps).
func ReactivePathStudy() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reactive path — sudden-obstacle distance sweep (v=5.6 m/s, floor 3.92 m)\n")
	fmt.Fprintf(&b, "  %-12s %-10s %-10s %-12s %s\n", "appears(m)", "reactive", "collided", "clearance(m)", "stopped")
	for _, d := range []float64{3.0, 4.2, 4.5, 5.5, 7.0, 10.0, 20.0} {
		cfg := core.DefaultConfig()
		out := core.RunSuddenObstacle(cfg, d, 30*time.Second)
		fmt.Fprintf(&b, "  %-12.1f %-10v %-10v %-12.2f %v\n",
			d, out.Reactive, out.Collided, out.MinClearanceM, out.Stopped)
	}
	return b.String()
}

// FusionStudy reports the Sec. VI-B numbers: GPS-VIO drift correction and
// radar-vs-KCF tracking cost, via the core simulation's tracking latencies.
func FusionStudy() string {
	cfg := vio.DefaultConfig()
	imuCfg := sensors.DefaultIMUConfig()
	imuCfg.GyroBias = 0
	imuCfg.AccelBias = 0
	w := world.NewCorridor(1200, sim.NewRNG(5))
	gps := sensors.NewGPS(sensors.DefaultGPSConfig(), w, sim.NewRNG(6))
	speed := 5.6
	traj := func(tt time.Duration) (world.Pose, mathx.Vec3) {
		return world.Pose{Pos: mathx.Vec2{X: speed * tt.Seconds()}}, mathx.Vec3{}
	}
	bare := vio.RunTrajectory(cfg, imuCfg, traj, w, vio.RunOptions{Duration: 120 * time.Second}, sim.NewRNG(7))
	fused := vio.RunTrajectory(cfg, imuCfg, traj, w, vio.RunOptions{Duration: 120 * time.Second, GPS: gps}, sim.NewRNG(7))
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. VI-B — augmenting computing with sensors\n")
	fmt.Fprintf(&b, "  VIO only   : mean %.2f m  p90 %.2f m  final %.2f m over %0.f m\n",
		bare.Errors.Mean(), bare.Errors.Quantile(0.9), bare.FinalError, speed*120)
	fmt.Fprintf(&b, "  GPS-VIO EKF: mean %.2f m  p90 %.2f m  final %.2f m (fusion ~1 ms vs VIO 24 ms)\n",
		fused.Errors.Mean(), fused.Errors.Quantile(0.9), fused.FinalError)
	return b.String()
}

// Extensions reports the supporting analyses beyond the paper's figures:
// CAN schedulability, multi-camera sync scaling, mobile-SoC data-movement
// overhead, the thermal constraint, and the RPR hourly-upload use case
// sketched in Sec. VII.
func Extensions() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extensions\n")

	fmt.Fprintf(&b, "— CAN schedule analysis (worst-case response times):\n")
	rts := canbus.AnalyzeSchedule(canbus.DefaultSchedule(), 500_000)
	b.WriteString(canbus.RenderAnalysis(rts, 500_000))

	mc := sensorsync.MultiCameraSyncExperiment(8, 10*time.Second, sim.NewRNG(21))
	fmt.Fprintf(&b, "— 8-camera hardware sync: mean spread %.2f ms, max %.2f ms over %d pulses\n",
		mc.MeanMs, mc.MaxMs, mc.Frames)

	soc := platform.MobileSoCDataPath()
	frame := 1920 * 1080 * 2
	fmt.Fprintf(&b, "— mobile-SoC DSP offload overhead: %.2f ms and %.2f W at 4x30 FPS (FPGA in-situ: 0)\n",
		soc.FrameOverhead(frame).Seconds()*1000, soc.SustainedPowerW(frame, 120))

	th := models.DefaultThermalModel()
	pad := models.DefaultPowerBudget().TotalW()
	fmt.Fprintf(&b, "— thermal: %0.f W at +40C ambient -> %.0f C internal (ceiling %.0f C, headroom %.0f W)\n",
		pad, th.SteadyTempC(pad, 40), th.MaxComponentTempC, th.HeadroomW(pad, 40))

	swap := rpr.NewEngine(rpr.DefaultEngineConfig()).Transfer(rpr.BitstreamFeatureExtract.Bytes)
	fmt.Fprintf(&b, "— RPR hourly upload: %s\n",
		cloud.HourlyUploadPlan(42<<30, cloud.DefaultCompressionAccelerator(), swap.Duration))

	// Pod vs shuttle: the two product lines' Eq. 1 envelopes.
	pod := models.DefaultLatencyModel()
	shuttle := models.DefaultLatencyModel()
	sp := vehicle.ShuttleParams()
	shuttle.BrakeDecel = sp.MaxBrake
	shuttle.MechLatency = sp.MechLatency
	fmt.Fprintf(&b, "— product lines at 164 ms Tcomp: pod avoids >= %.2f m (floor %.2f), shuttle >= %.2f m (floor %.2f)\n",
		pod.AvoidableDistance(164*time.Millisecond), pod.BrakingDistance(),
		shuttle.AvoidableDistance(164*time.Millisecond), shuttle.BrakingDistance())
	return b.String()
}

// All runs every experiment and concatenates the reports (the full
// regeneration pass used by cmd/sovbench).
func All(seed int64, sovDuration time.Duration, pclPoints int) string {
	var b strings.Builder
	sections := []string{
		Fig2LatencyChain(),
		Fig3aRequirement(),
		Fig3bDrivingTime(),
		Table1Power(),
		Table2Cost(),
		Table3Algorithms(),
		Fig4aReuse(pclPoints),
		Fig4bTraffic(pclPoints),
		Fig6Platforms(),
		Fig8Mappings(),
		Fig9RPR(),
	}
	fig10, _ := Fig10Characterization(seed, sovDuration)
	sections = append(sections,
		fig10,
		Fig11aDepthSync(),
		Fig11bLocalizationSync(),
		Fig12SyncArchitecture(),
		ReactivePathStudy(),
		FusionStudy(),
		Extensions(),
	)
	for _, s := range sections {
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String()
}

// newFig4bCache builds the scaled cache used by the Fig. 4b measurements.
func newFig4bCache() *cachesim.Cache {
	return cachesim.New(cachesim.Config{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 8})
}
