package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestAnalyticSections(t *testing.T) {
	cases := []struct {
		name string
		out  string
		want []string
	}{
		{"fig2", Fig2LatencyChain(), []string{"Tmech", "braking distance"}},
		{"fig3a", Fig3aRequirement(), []string{"164", "740", "floor"}},
		{"fig3b", Fig3bDrivingTime(), []string{"LiDAR", "server idle"}},
		{"table1", Table1Power(), []string{"175.0", "Radar", "Sonar"}},
		{"table2", Table2Cost(), []string{"70000", "LiDAR", "per trip"}},
		{"fig6", Fig6Platforms(), []string{"844.2", "FPGA", "TX2"}},
		{"fig8", Fig8Mappings(), []string{"GPU/FPGA", "speedup"}},
		{"fig9", Fig9RPR(), []string{"feature-extract", "MB/s", "CPU-driven"}},
	}
	for _, c := range cases {
		for _, w := range c.want {
			if !strings.Contains(c.out, w) {
				t.Errorf("%s missing %q:\n%s", c.name, w, c.out)
			}
		}
	}
}

func TestFig4Sections(t *testing.T) {
	a := Fig4aReuse(1500)
	if !strings.Contains(a, "frame 0") || !strings.Contains(a, "frame 1") {
		t.Fatalf("fig4a:\n%s", a)
	}
	b := Fig4bTraffic(2500)
	for _, k := range []string{"localization", "segmentation", "recognition", "reconstruction"} {
		if !strings.Contains(b, k) {
			t.Fatalf("fig4b missing %s:\n%s", k, b)
		}
	}
}

func TestFig10Section(t *testing.T) {
	out, rep := Fig10Characterization(2, 30*time.Second)
	if !strings.Contains(out, "computing latency") {
		t.Fatalf("fig10:\n%s", out)
	}
	if rep.Cycles < 250 {
		t.Fatalf("cycles = %d", rep.Cycles)
	}
}

func TestSyncSections(t *testing.T) {
	a := Fig11aDepthSync()
	if !strings.Contains(a, "offset(ms)") {
		t.Fatalf("fig11a:\n%s", a)
	}
	c := Fig12SyncArchitecture()
	if !strings.Contains(c, "hardware sync") || !strings.Contains(c, "1443") {
		t.Fatalf("fig12:\n%s", c)
	}
}

func TestStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("long studies")
	}
	r := ReactivePathStudy()
	if !strings.Contains(r, "appears(m)") {
		t.Fatalf("reactive:\n%s", r)
	}
	f := FusionStudy()
	if !strings.Contains(f, "GPS-VIO") {
		t.Fatalf("fusion:\n%s", f)
	}
}

func TestExtensionsSection(t *testing.T) {
	out := Extensions()
	for _, w := range []string{"CAN schedule", "8-camera", "mobile-SoC", "thermal", "hourly upload"} {
		if !strings.Contains(out, w) {
			t.Fatalf("extensions missing %q:\n%s", w, out)
		}
	}
}

func TestStencilVsKDTreeTraffic(t *testing.T) {
	// Sec. III-D: vision's regular stencils reuse on-chip; LiDAR's
	// kd-tree kernels do not. The stencil reference must sit near the
	// compulsory minimum while the point-cloud kernels are 10-100x above.
	out := Fig4bTraffic(3000)
	if !strings.Contains(out, "vision-stencil") {
		t.Fatalf("missing stencil row:\n%s", out)
	}
	// Direct check of the stencil's ratio.
	c := newFig4bCache()
	StencilSweep(c, 200, 45, 3)
	if r := c.Stats().TrafficRatio(); r > 2.0 {
		t.Fatalf("stencil traffic ratio = %.2f, want ~1 (regular reuse)", r)
	}
}

func TestSeriesCSV(t *testing.T) {
	out := SeriesCSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "figure,x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	counts := map[string]int{}
	for _, l := range lines[1:] {
		fields := strings.Split(l, ",")
		if len(fields) != 3 {
			t.Fatalf("malformed row %q", l)
		}
		counts[fields[0]]++
	}
	for _, fig := range []string{"fig3a_budget_ms", "fig3b_reduced_h", "fig11a_depth_err_m"} {
		if counts[fig] < 10 {
			t.Fatalf("series %s has %d rows", fig, counts[fig])
		}
	}
}
