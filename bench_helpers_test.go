package sov

import "sov/internal/planning"

// Helpers shared by the planner-comparison benches; kept out of
// bench_test.go so the per-figure harness reads as an index.

func newBenchMPC() *planning.MPC {
	return planning.NewMPC(planning.DefaultMPCConfig())
}

func newBenchEM() *planning.EMPlanner {
	return planning.NewEMPlanner(planning.DefaultEMConfig())
}

func benchPlanInput() planning.Input {
	return planning.Input{
		Speed:       5.6,
		TargetSpeed: 5.6,
		LaneWidth:   3,
		Obstacles:   []planning.Obstacle{{S: 20, D: 0.3, Radius: 0.5}},
	}
}
