package sov_test

import (
	"fmt"
	"time"

	"sov"
)

// The latency model answers Sec. III design questions directly.
func ExampleLatencyModel() {
	m := sov.DefaultLatencyModel()
	fmt.Printf("braking floor: %.2f m\n", m.BrakingDistance())
	fmt.Printf("avoid from %.2f m at the 164 ms mean\n", m.AvoidableDistance(164*time.Millisecond))
	fmt.Printf("budget for a 5 m object: %v\n", m.ComputingBudget(5).Round(time.Millisecond))
	// Output:
	// braking floor: 3.92 m
	// avoid from 4.95 m at the 164 ms mean
	// budget for a 5 m object: 173ms
}

// The energy model reproduces the Fig. 3b markers.
func ExampleEnergyModel() {
	em := sov.DefaultEnergyModel()
	pad := sov.DefaultPowerBudget().TotalKW()
	fmt.Printf("driving time with AD: %.1f h\n", em.DrivingTimeHours(pad))
	fmt.Printf("an idle server costs %.1f%% of a 10 h day\n",
		em.RevenueLossPercent(pad, pad+0.031, 10))
	// Output:
	// driving time with AD: 7.7 h
	// an idle server costs 3.0% of a 10 h day
}

// The mapping explorer reproduces Fig. 8's conclusion.
func ExampleExploreMappings() {
	best := sov.ExploreMappings()[0]
	fmt.Printf("best mapping: scene understanding on %s, localization on %s (%.0f ms)\n",
		best.Mapping.SceneUnderstanding, best.Mapping.Localization,
		best.PerceptionLatency.Seconds()*1000)
	// Output:
	// best mapping: scene understanding on GPU, localization on FPGA (77 ms)
}

// Assembling and running the vehicle takes three lines.
func ExampleNewSystem() {
	world := sov.CruiseScenario(1)
	system := sov.NewSystem(sov.DefaultConfig(), world)
	report := system.Run(10 * time.Second)
	fmt.Printf("collisions: %d, throughput: %.0f Hz\n", report.Collisions, report.ThroughputHz)
	// Output:
	// collisions: 0, throughput: 10 Hz
}
