// Benchmarks for the staged control-loop dataflow: serial vs pipelined
// wall-clock throughput and the steady-state allocation contract. The CI
// bench-smoke step runs TestControlLoopSteadyStateAllocs as the regression
// gate; scripts/bench_pipeline.sh turns the benchmark output into
// BENCH_pipeline.json.
package sov

import (
	"io"
	"runtime"
	"testing"
	"time"

	"sov/internal/core"
	"sov/internal/obs"
)

// benchCruise runs one fixed-horizon characterization cruise. Each op spans
// simDuration of virtual time (~10 control cycles per virtual second), so
// per-cycle figures are ns/op and allocs/op divided by the cycle count.
func benchCruise(b *testing.B, pipelined bool, simDuration time.Duration) {
	b.Helper()
	var rep *core.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Pipeline = pipelined
		rep = core.New(cfg, core.CruiseScenario(3)).Run(simDuration)
	}
	b.StopTimer()
	cycles := float64(rep.Cycles)
	b.ReportMetric(cycles, "cycles/op")
	b.ReportMetric(cycles/b.Elapsed().Seconds()*float64(b.N), "cycles/sec")
	b.ReportMetric(rep.PipelineDepth.Mean(), "inflight_mean")
}

func BenchmarkPipelineThroughput(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchCruise(b, false, 60*time.Second) })
	b.Run("pipelined", func(b *testing.B) { benchCruise(b, true, 60*time.Second) })
}

// measureSteadyStateAllocs returns the per-cycle allocation rate of the
// control loop once warm, by differencing two fresh runs of different
// lengths so setup-time allocations (world, detector, pools) cancel out.
// With instrumented set, the full telemetry layer — metrics registry, span
// writer, flight recorder — is attached, so the gate also covers the obs
// record paths. With sched set, the online heterogeneous scheduler runs in
// the loop, so the gate covers its per-cycle BeginCycle/Observe path too.
func measureSteadyStateAllocs(pipelined, instrumented, sched bool) float64 {
	run := func(d time.Duration) (uint64, int) {
		cfg := core.DefaultConfig()
		cfg.Pipeline = pipelined
		cfg.Sched = sched
		s := core.New(cfg, core.CruiseScenario(3))
		if instrumented {
			s.AttachMetrics(obs.NewRegistry())
			s.AttachSpans(obs.NewSpanWriter(io.Discard))
			s.AttachFlightRecorder(obs.NewFlightRecorder(io.Discard, 64, 3))
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		rep := s.Run(d)
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs, rep.Cycles
	}
	aShort, cShort := run(10 * time.Second)
	aLong, cLong := run(60 * time.Second)
	return float64(aLong-aShort) / float64(cLong-cShort)
}

// TestControlLoopSteadyStateAllocs is the CI bench-smoke gate for the
// zero-allocation frame-reuse contract: a warm control cycle — capture,
// perceive, plan, delivery scheduling — must stay near zero allocations in
// both modes. The seed ran ~25 allocs/cycle; the frame/slot/event recycling
// brought it under 1. The bound of 2 leaves headroom for amortized sample
// growth without letting a per-cycle regression slip through. The
// instrumented variants hold the telemetry layer to the same bound: its
// steady-state record paths (counters, histogram bins, buffered spans, the
// flight-recorder ring) must add ~0 allocs/cycle. The sched variants hold
// the online scheduler to it as well: BeginCycle/Observe/decide work
// entirely in preallocated candidate tables.
func TestControlLoopSteadyStateAllocs(t *testing.T) {
	for _, mode := range []struct {
		name         string
		pipelined    bool
		instrumented bool
		sched        bool
	}{
		{"serial", false, false, false},
		{"pipelined", true, false, false},
		{"serial+obs", false, true, false},
		{"pipelined+obs", true, true, false},
		{"serial+sched", false, false, true},
		{"pipelined+obs+sched", true, true, true},
	} {
		if got := measureSteadyStateAllocs(mode.pipelined, mode.instrumented, mode.sched); got > 2 {
			t.Errorf("%s control loop allocates %.2f allocs/cycle in steady state, want < 2",
				mode.name, got)
		}
	}
}
