// Package sov is the public API of the Systems-on-a-Vehicle (SoV) library —
// a reproduction of "Building the Computing System for Autonomous
// Micromobility Vehicles: Design Constraints and Architectural
// Optimizations" (MICRO 2020).
//
// The package exposes three layers:
//
//   - the analytical design-constraint models of Sec. III (latency Eq. 1,
//     energy Eq. 2, power Table I, cost Table II);
//   - the assembled on-vehicle system (sensing → perception → planning with
//     the reactive safety override) running as a deterministic
//     discrete-event simulation, producing the Fig. 10 characterization;
//   - the hardware design-space tools: the platform catalog and perception
//     mapping explorer (Figs. 6/8), the runtime-partial-reconfiguration
//     engine (Fig. 9), and the sensing–computing co-design experiments
//     (Figs. 11/12).
//
// Everything underneath is implemented from scratch in this module: the
// EKF visual-inertial odometry, ELAS-style stereo, the FFT-based KCF
// tracker, the CNN inference engine, MPC and EM-style planners, the CAN
// bus, the kd-tree/ICP point-cloud stack with its cache simulator, and the
// synthetic world + sensor models that substitute for the physical vehicle
// (see DESIGN.md).
package sov

import (
	"time"

	"sov/internal/core"
	"sov/internal/models"
	"sov/internal/platform"
	"sov/internal/rpr"
	"sov/internal/sensorsync"
	"sov/internal/sim"
	"sov/internal/world"
)

// Config selects the SoV build options (FPGA offload, hardware sync,
// reactive path, planner choice, ...).
type Config = core.Config

// Report is a run's latency characterization and safety outcome.
type Report = core.Report

// World is the synthetic environment the vehicle drives through.
type World = world.World

// CutInOutcome is the result of an obstacle cut-in trial.
type CutInOutcome = core.CutInOutcome

// DefaultConfig returns the deployed vehicle's configuration: localization
// offloaded to the FPGA, hardware sensor synchronization, radar tracking
// with spatial synchronization, MPC planning, and the reactive path armed.
func DefaultConfig() Config { return core.DefaultConfig() }

// System is an assembled Systems-on-a-Vehicle instance.
type System struct {
	inner *core.SoV
}

// NewSystem assembles an SoV over a world.
func NewSystem(cfg Config, w *World) *System {
	return &System{inner: core.New(cfg, w)}
}

// Run simulates the vehicle for the given (virtual) duration and returns
// the characterization report.
func (s *System) Run(d time.Duration) *Report { return s.inner.Run(d) }

// Speed returns the vehicle's current speed in m/s.
func (s *System) Speed() float64 { return s.inner.Vehicle().State().Speed }

// DistanceM returns the odometer reading in meters.
func (s *System) DistanceM() float64 { return s.inner.Vehicle().Odometer() }

// CruiseScenario builds the standard 2 km characterization corridor with
// periodic far-ahead pedestrian crossings.
func CruiseScenario(seed int64) *World { return core.CruiseScenario(seed) }

// RunCutIn executes one pedestrian cut-in trial: the pedestrian steps into
// the lane when the vehicle is triggerDistance meters away.
func RunCutIn(cfg Config, triggerDistance float64, d time.Duration) CutInOutcome {
	return core.RunCutIn(cfg, triggerDistance, d)
}

// RunSuddenObstacle executes the Eq. 1 worst case: an obstacle materializes
// directly in the lane when the vehicle is triggerDistance meters away.
// Outcomes are decided purely by distance vs. reaction latency.
func RunSuddenObstacle(cfg Config, triggerDistance float64, d time.Duration) CutInOutcome {
	return core.RunSuddenObstacle(cfg, triggerDistance, d)
}

// NewCorridor builds a straight two-lane corridor world with landmarks.
func NewCorridor(length float64, seed int64) *World {
	return world.NewCorridor(length, sim.NewRNG(seed))
}

// CampusLoop builds a rectangular campus-loop world.
func CampusLoop(side float64, seed int64) *World {
	return world.CampusLoop(side, sim.NewRNG(seed))
}

// Analytical models (Sec. III).

// LatencyModel is Eq. 1: the end-to-end stop-distance constraint.
type LatencyModel = models.LatencyModel

// EnergyModel is Eq. 2: driving time lost to the AD system's power draw.
type EnergyModel = models.EnergyModel

// PowerBudget is the Table I power breakdown.
type PowerBudget = models.PowerBudget

// CostModel is the Table II vehicle cost breakdown.
type CostModel = models.CostModel

// TCO is the total-cost-of-ownership sketch of Sec. VII.
type TCO = models.TCO

// DefaultLatencyModel returns the deployed parameters (v = 5.6 m/s,
// a = 4 m/s², Tdata ≈ 1 ms, Tmech ≈ 19 ms).
func DefaultLatencyModel() LatencyModel { return models.DefaultLatencyModel() }

// DefaultEnergyModel returns the 6 kWh / 0.6 kW vehicle.
func DefaultEnergyModel() EnergyModel { return models.DefaultEnergyModel() }

// DefaultPowerBudget returns Table I (PAD = 175 W).
func DefaultPowerBudget() PowerBudget { return models.DefaultPowerBudget() }

// CameraVehicleCost returns our camera-based vehicle's Table II rows.
func CameraVehicleCost() CostModel { return models.DefaultCameraVehicleCost() }

// LiDARVehicleCost returns the LiDAR-based comparison rows of Table II.
func LiDARVehicleCost() CostModel { return models.DefaultLiDARVehicleCost() }

// DefaultTCO returns the tourist-site operating profile.
func DefaultTCO() TCO { return models.DefaultTCO() }

// Hardware design space (Sec. V).

// Processor is one hardware option with measured operating points (Fig. 6).
type Processor = platform.Processor

// PerceptionMapping assigns perception task groups to processors.
type PerceptionMapping = platform.Mapping

// MappingResult is the evaluated latency of one mapping (Fig. 8).
type MappingResult = platform.PerceptionResult

// PlatformCatalog returns the CPU/GPU/TX2/FPGA operating points.
func PlatformCatalog() map[string]*Processor { return platform.Catalog() }

// ExploreMappings evaluates the Fig. 8 mapping strategies, best first.
func ExploreMappings() []MappingResult { return platform.ExploreMappings() }

// RPREngine is the runtime-partial-reconfiguration datapath (Fig. 9).
type RPREngine = rpr.Engine

// NewRPREngine returns the deployed reconfiguration engine.
func NewRPREngine() *RPREngine { return rpr.NewEngine(rpr.DefaultEngineConfig()) }

// Sensing–computing co-design (Sec. VI).

// SyncPairing summarizes a camera–IMU synchronization experiment.
type SyncPairing = sensorsync.PairingResult

// SoftwareSyncExperiment measures application-layer pairing error
// (the Fig. 12a/b baseline).
func SoftwareSyncExperiment(horizon time.Duration, seed int64) SyncPairing {
	return sensorsync.SoftwareSyncExperiment(horizon, sim.NewRNG(seed))
}

// HardwareSyncExperiment measures the hardware synchronizer's pairing error
// (the Fig. 12c design).
func HardwareSyncExperiment(horizon time.Duration, seed int64) SyncPairing {
	return sensorsync.HardwareSyncExperiment(horizon, sim.NewRNG(seed))
}

// StereoDepthErrorAtOffset runs the Fig. 11a experiment on real rendered
// stereo pairs: the depth error of a moving object when the two cameras
// fire offset apart.
func StereoDepthErrorAtOffset(offset time.Duration) float64 {
	return sensorsync.DepthErrorAtOffset(offset, 5.0, 1.2, 25)
}
