// Command sovmodel answers design-constraint questions from the Sec. III
// analytical models: latency budgets, driving-time impact, and cost.
//
// Usage:
//
//	sovmodel [-workers N] latency -distance 5 [-speed 5.6] [-decel 4]
//	sovmodel [-workers N] energy  -pad 0.175 [-extra 31]
//	sovmodel [-workers N] cost
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"sov/internal/core"
	"sov/internal/models"
	"sov/internal/parallel"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "worker count for parallel kernels (output is identical for any value)")
	pipelined := flag.Bool("pipeline", false, "run any SoV control loops as overlapped pipeline stages (output is identical)")
	quant := flag.Bool("quant", false, "back perception with the int8 fixed-point kernels (DESIGN.md \u00a78)")
	flag.Parse()
	parallel.SetWorkers(*workers)
	core.SetPipelineDefault(*pipelined)
	core.SetQuantDefault(*quant)
	args := flag.Args()
	if len(args) < 1 {
		usage()
		return
	}
	switch args[0] {
	case "latency":
		fs := flag.NewFlagSet("latency", flag.ExitOnError)
		distance := fs.Float64("distance", 5, "object distance in meters")
		speed := fs.Float64("speed", 5.6, "vehicle speed m/s")
		decel := fs.Float64("decel", 4, "brake deceleration m/s2")
		_ = fs.Parse(args[1:])
		m := models.DefaultLatencyModel()
		m.Speed = *speed
		m.BrakeDecel = *decel
		budget := m.ComputingBudget(*distance)
		fmt.Printf("braking distance: %.2f m\n", m.BrakingDistance())
		if budget < 0 {
			fmt.Printf("object at %.1f m is inside the braking floor: unavoidable by computing\n", *distance)
			return
		}
		fmt.Printf("computing budget to avoid an object at %.1f m: %v\n", *distance, budget.Round(time.Millisecond))
		fmt.Printf("max safe speed at 164 ms Tcomp for that distance: %.2f m/s\n",
			m.SpeedForBudget(164*time.Millisecond, *distance))
	case "energy":
		fs := flag.NewFlagSet("energy", flag.ExitOnError)
		pad := fs.Float64("pad", models.DefaultPowerBudget().TotalKW(), "AD power in kW")
		extra := fs.Float64("extra", 0, "additional watts (e.g. 31 for an idle server)")
		day := fs.Float64("day", 10, "operating hours per day")
		_ = fs.Parse(args[1:])
		em := models.DefaultEnergyModel()
		total := *pad + *extra/1000
		fmt.Printf("driving time at PAD=%.3f kW: %.2f h (reduced by %.2f h)\n",
			total, em.DrivingTimeHours(total), em.ReducedDrivingTimeHours(total))
		if *extra != 0 {
			fmt.Printf("the extra %.0f W costs %.1f%% of a %.0f h operating day\n",
				*extra, em.RevenueLossPercent(*pad, total, *day), *day)
		}
	case "cost":
		fmt.Print(models.DefaultCameraVehicleCost().Render())
		tco := models.DefaultTCO()
		fmt.Printf("TCO: $%.0f/year, $%.2f per trip\n", tco.AnnualUSD(), tco.CostPerTripUSD())
	case "thermal":
		fs := flag.NewFlagSet("thermal", flag.ExitOnError)
		load := fs.Float64("load", models.DefaultPowerBudget().TotalW(), "compute load in watts")
		ambient := fs.Float64("ambient", 40, "ambient temperature in C")
		_ = fs.Parse(args[1:])
		th := models.DefaultThermalModel()
		fmt.Printf("steady temperature at %.0f W, %.0f C ambient: %.1f C (ceiling %.0f C)\n",
			*load, *ambient, th.SteadyTempC(*load, *ambient), th.MaxComponentTempC)
		fmt.Printf("headroom: %.0f W; max safe load: %.0f W\n",
			th.HeadroomW(*load, *ambient), th.MaxLoadW(*ambient))
		if !th.WithinLimits(*load, *ambient) {
			fmt.Println("WARNING: load exceeds the thermal envelope")
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Println("usage: sovmodel {latency|energy|cost|thermal} [flags]")
}
