// Command sovquery answers range queries against a telemetry store written
// by sovfleet -cloud (DESIGN.md §14): a vehicle range, a virtual-time
// window, and an optional kind filter select a rectangle of the fleet's
// event space, streamed as JSONL. Results are byte-identical regardless of
// how many shards or workers ingested the store.
//
// Usage:
//
//	sovquery -dir telemetry/ [-vehicles 100-200] [-from 3h] [-to 4h]
//	         [-kinds reactive-brake,collision] [-count] [-stats]
//
// Examples:
//
//	# all reactive-brake events for vehicles 100-200 in hour 3
//	sovquery -dir tel/ -vehicles 100-200 -from 3h -to 4h -kinds reactive-brake
//
//	# epoch snapshots for one vehicle
//	sovquery -dir tel/ -vehicles 7-7 -kinds epoch
//
//	# how many collisions fleet-wide?
//	sovquery -dir tel/ -kinds collision -count
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sov/internal/telemetry"
)

func main() {
	dir := flag.String("dir", "", "telemetry store directory (required)")
	vehicles := flag.String("vehicles", "", "vehicle id range `lo-hi` (or a single id; empty = all)")
	from := flag.Duration("from", 0, "virtual-time window start (e.g. 3h)")
	to := flag.Duration("to", 0, "virtual-time window end (0 = unbounded)")
	kinds := flag.String("kinds", "", "comma-separated event kinds (epoch,assign,pickup,dropoff,collision,reactive-brake,halt,blackbox,metric,log); kind queries use the B+-tree index")
	count := flag.Bool("count", false, "print only the matching event count")
	stats := flag.Bool("stats", false, "print store stats (runs, entries, read amplification) to stderr")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "sovquery: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	var q telemetry.Query
	if *vehicles != "" {
		lo, hi, err := parseRange(*vehicles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sovquery:", err)
			os.Exit(2)
		}
		q.VehicleMin, q.VehicleMax = lo, hi
	}
	q.TMinMs = telemetry.VirtualMs(*from)
	q.TMaxMs = telemetry.VirtualMs(*to)
	for _, name := range strings.Split(*kinds, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, ok := telemetry.KindByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "sovquery: unknown kind %q\n", name)
			os.Exit(2)
		}
		q.Kinds = append(q.Kinds, k)
	}

	// Open read-only-ish: NoCompact so a query never rewrites the store.
	opts := telemetry.DefaultOptions()
	opts.NoCompact = true
	s, err := telemetry.Open(*dir, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sovquery:", err)
		os.Exit(1)
	}

	var n int64
	if *count {
		n, err = s.Count(q)
		if err == nil {
			fmt.Println(n)
		}
	} else {
		w := bufio.NewWriterSize(os.Stdout, 1<<16)
		n, err = s.WriteJSONL(w, q)
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sovquery:", err)
		os.Exit(1)
	}
	if *stats {
		st := s.Stats()
		runs, runBytes := s.Runs()
		fmt.Fprintf(os.Stderr, "sovquery: %d rows from %d runs (%d bytes on disk); read %d blocks / %d bytes, %d bloom skips\n",
			n, runs, runBytes, st.BlocksRead, st.RunBytesRead, st.BloomSkips)
	}
}

// parseRange parses "lo-hi" or a bare vehicle id.
func parseRange(s string) (lo, hi uint32, err error) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		l, err1 := strconv.ParseUint(s[:i], 10, 32)
		h, err2 := strconv.ParseUint(s[i+1:], 10, 32)
		if err1 != nil || err2 != nil || h < l {
			return 0, 0, fmt.Errorf("bad vehicle range %q (want lo-hi)", s)
		}
		return uint32(l), uint32(h), nil
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad vehicle id %q", s)
	}
	return uint32(v), uint32(v), nil
}
