// Command sovfleet runs the fleet-scale simulation: N deterministic SoV
// instances sharded across the worker pool, advancing in lockstep
// virtual-time epochs with seeded trip demand, nearest-idle dispatch, and
// battery/recharge state (DESIGN.md §11). Output is byte-identical for any
// -workers count.
//
// Usage:
//
//	sovfleet [-vehicles 1000] [-regions 8] [-duration 10m] [-epoch 1s]
//	         [-seed 1] [-workers N] [-demand 120] [-quant] [-sched]
//	         [-pipeline] [-perception 0] [-trace fleet.jsonl]
//	         [-metrics fleet.prom] [-hist] [-cloud telemetry-dir]
//
// With -cloud, every epoch's barrier streams per-vehicle events into the
// LSM telemetry store at that directory (DESIGN.md §14); query it with
// sovquery. The store's on-disk state is byte-identical for any -workers
// count.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sov/internal/core"
	"sov/internal/fleet"
	"sov/internal/obs"
	"sov/internal/parallel"
	"sov/internal/telemetry"
)

//sovlint:wallclock host-throughput report only; simulation results are virtual-time
func main() {
	vehicles := flag.Int("vehicles", 1000, "fleet size")
	regions := flag.Int("regions", 8, "independent service regions")
	duration := flag.Duration("duration", 10*time.Minute, "virtual horizon")
	epoch := flag.Duration("epoch", time.Second, "lockstep epoch length")
	seed := flag.Int64("seed", 1, "fleet seed (splits into per-vehicle/region/demand streams)")
	workers := flag.Int("workers", runtime.NumCPU(), "worker count (output is identical for any value)")
	demand := flag.Float64("demand", 120, "mean rider arrivals per region-hour")
	quant := flag.Bool("quant", false, "back per-vehicle perception with the int8 kernels")
	sched := flag.Bool("sched", false, "attach the online heterogeneous scheduler to every vehicle")
	pipelined := flag.Bool("pipeline", false, "run each vehicle's control loop as pipeline stages")
	perception := flag.Int("perception", 0, "run the batched cross-vehicle quantized detector every k epochs (0 = off)")
	tracePath := flag.String("trace", "", "write the per-epoch JSONL fleet trace here (- for stdout)")
	metricsPath := flag.String("metrics", "", "write the fleet metrics exposition here (.json for JSON, else Prometheus text)")
	hist := flag.Bool("hist", false, "print the rider wait-time histogram")
	cloudDir := flag.String("cloud", "", "ingest per-epoch fleet telemetry into the LSM store at this directory")
	flag.Parse()

	parallel.SetWorkers(*workers)
	core.SetPipelineDefault(*pipelined)
	core.SetQuantDefault(*quant)
	core.SetSchedDefault(*sched)

	cfg := fleet.DefaultConfig()
	cfg.Vehicles = *vehicles
	cfg.Regions = *regions
	cfg.Epoch = *epoch
	cfg.Seed = *seed
	cfg.DemandPerHour = *demand
	cfg.PerceptionEvery = *perception
	cfg.Vehicle = core.DefaultConfig()
	if *pipelined {
		cfg.Vehicle.PipelineForce = true
	}

	if *tracePath != "" {
		out := os.Stdout
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		bw := bufio.NewWriterSize(out, 1<<16)
		defer bw.Flush()
		cfg.Trace = bw
	}

	var store *telemetry.Store
	var ingest *telemetry.Ingestor
	if *cloudDir != "" {
		var err error
		store, err = telemetry.Open(*cloudDir, telemetry.DefaultOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, "cloud:", err)
			os.Exit(1)
		}
		ingest = telemetry.NewIngestor(store)
		cfg.Cloud = ingest
	}

	var reg *obs.Registry
	fl := fleet.New(cfg)
	if *metricsPath != "" || store != nil {
		reg = obs.NewRegistry()
		fl.AttachMetrics(reg)
	}

	start := time.Now()
	sum := fl.Run(*duration)
	wall := time.Since(start)

	if store != nil {
		if err := fl.CloudErr(); err != nil {
			fmt.Fprintln(os.Stderr, "cloud:", err)
			os.Exit(1)
		}
		// Final fleet-wide metrics snapshot rides along as the last event.
		var mbuf bytes.Buffer
		if err := reg.WriteJSON(&mbuf, true); err == nil {
			ingest.IngestMetrics(fl.Now(), mbuf.Bytes())
		}
		if err := ingest.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "cloud:", err)
			os.Exit(1)
		}
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cloud:", err)
			os.Exit(1)
		}
		st := store.Stats()
		fmt.Printf("cloud: %d events ingested into %s (%d flushes, %d compactions, write amp %.2f)\n",
			st.Events, *cloudDir, st.Flushes, st.Compactions, st.WriteAmplification())
	}

	fmt.Print(sum.Render())
	rate := float64(sum.Vehicles) * sum.VirtualTime.Seconds() / wall.Seconds()
	fmt.Printf("host: %v wall for %v virtual x %d vehicles (%.0f vehicle-seconds/sec, %d workers)\n",
		wall.Round(time.Millisecond), sum.VirtualTime, sum.Vehicles, rate, parallel.Workers())
	if *hist {
		fmt.Print(fl.WaitHistogram(48))
	}

	if reg != nil && *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
		defer f.Close()
		if strings.HasSuffix(*metricsPath, ".json") {
			err = reg.WriteJSON(f, true)
		} else {
			err = reg.WriteText(f, true)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
	}
}
