// Command sovsim runs the Systems-on-a-Vehicle simulation on the cruise
// scenario and prints the Fig. 10-style latency characterization.
//
// Usage:
//
//	sovsim [-duration 120s] [-seed 1] [-no-fpga] [-no-sync] [-no-reactive]
//	       [-no-radar-tracking] [-em-planner] [-workers N] [-pipeline]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sov/internal/core"
	"sov/internal/parallel"
	"sov/internal/vehicle"
)

func main() {
	duration := flag.Duration("duration", 120*time.Second, "simulated driving time")
	seed := flag.Int64("seed", 1, "simulation seed")
	noFPGA := flag.Bool("no-fpga", false, "keep localization on the GPU (Fig. 8 ablation)")
	noSync := flag.Bool("no-sync", false, "disable the hardware synchronizer")
	noReactive := flag.Bool("no-reactive", false, "disarm the reactive safety path")
	noRadarTrk := flag.Bool("no-radar-tracking", false, "use KCF visual tracking instead of radar")
	emPlanner := flag.Bool("em-planner", false, "use the EM-style DP+QP planner instead of MPC")
	shuttle := flag.Bool("shuttle", false, "run the 8-seater shuttle instead of the 2-seater pod")
	tracePath := flag.String("trace", "", "write a JSONL per-cycle trace to this path")
	workers := flag.Int("workers", runtime.NumCPU(), "worker count for parallel kernels (output is identical for any value)")
	pipelined := flag.Bool("pipeline", false, "run the control loop as overlapped pipeline stages (output is identical)")
	quant := flag.Bool("quant", false, "back perception with the int8 fixed-point kernels (DESIGN.md \u00a78)")
	flag.Parse()
	parallel.SetWorkers(*workers)

	cfg := core.DefaultConfig()
	cfg.Pipeline = *pipelined
	cfg.Quant = *quant
	cfg.Seed = *seed
	if *shuttle {
		cfg.Vehicle = vehicle.ShuttleParams()
	}
	cfg.FPGAOffload = !*noFPGA
	cfg.HardwareSync = !*noSync
	cfg.ReactivePath = !*noReactive
	cfg.RadarTracking = !*noRadarTrk
	cfg.EMPlanner = *emPlanner

	w := core.CruiseScenario(*seed)
	s := core.New(cfg, w)
	var tracer *core.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		tracer = core.NewTracer(f)
		s.AttachTracer(tracer)
	}
	rep := s.Run(*duration)
	if tracer != nil {
		if n, err := tracer.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
		} else {
			fmt.Printf("trace: %d records -> %s\n", n, *tracePath)
		}
	}
	fmt.Printf("SoV cruise: %v simulated, seed %d\n", *duration, *seed)
	fmt.Print(rep.Render())
	if rep.Collisions > 0 {
		fmt.Fprintln(os.Stderr, "warning: collisions occurred")
		os.Exit(1)
	}
}
