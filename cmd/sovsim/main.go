// Command sovsim runs the Systems-on-a-Vehicle simulation on the cruise
// scenario and prints the Fig. 10-style latency characterization.
//
// Usage:
//
//	sovsim [-duration 120s] [-seed 1] [-no-fpga] [-no-sync] [-no-reactive]
//	       [-no-radar-tracking] [-em-planner] [-workers N] [-pipeline]
//	       [-sched] [-sched-mapping GPU/FPGA] [-sched-static] [-cameras N]
//	       [-ambient 25] [-trace t.jsonl] [-metrics m.prom] [-spans s.json]
//	       [-blackbox b.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sov/internal/core"
	"sov/internal/obs"
	"sov/internal/parallel"
	"sov/internal/vehicle"
)

func main() {
	duration := flag.Duration("duration", 120*time.Second, "simulated driving time")
	seed := flag.Int64("seed", 1, "simulation seed")
	noFPGA := flag.Bool("no-fpga", false, "keep localization on the GPU (Fig. 8 ablation)")
	noSync := flag.Bool("no-sync", false, "disable the hardware synchronizer")
	noReactive := flag.Bool("no-reactive", false, "disarm the reactive safety path")
	noRadarTrk := flag.Bool("no-radar-tracking", false, "use KCF visual tracking instead of radar")
	emPlanner := flag.Bool("em-planner", false, "use the EM-style DP+QP planner instead of MPC")
	shuttle := flag.Bool("shuttle", false, "run the 8-seater shuttle instead of the 2-seater pod")
	tracePath := flag.String("trace", "", "write a JSONL per-cycle trace to this path")
	metricsPath := flag.String("metrics", "", "write the metrics registry exposition to this path (.json for the JSON snapshot, else Prometheus text)")
	spansPath := flag.String("spans", "", "write per-cycle stage spans (Chrome trace_event JSON, Perfetto-loadable) to this path")
	boxPath := flag.String("blackbox", "", "write flight-recorder anomaly dumps (JSONL) to this path")
	boxDepth := flag.Int("blackbox-depth", 64, "flight-recorder ring depth in cycles")
	workers := flag.Int("workers", runtime.NumCPU(), "worker count for parallel kernels (output is identical for any value)")
	pipelined := flag.Bool("pipeline", false, "run the control loop as overlapped pipeline stages (output is identical)")
	quant := flag.Bool("quant", false, "back perception with the int8 fixed-point kernels (DESIGN.md §8)")
	sched := flag.Bool("sched", false, "attach the online heterogeneous scheduler (DESIGN.md §13)")
	schedMapping := flag.String("sched-mapping", "", "scheduler initial SU/Loc mapping, e.g. GPU/FPGA")
	schedStatic := flag.Bool("sched-static", false, "pin the scheduler to its initial mapping (baseline)")
	cameras := flag.Int("cameras", 1, "cameras feeding scene understanding per cycle")
	ambient := flag.Float64("ambient", 25, "enclosure ambient temperature (C) for the scheduler's thermal model")
	flag.Parse()
	parallel.SetWorkers(*workers)
	core.SetSchedDefault(*sched)

	cfg := core.DefaultConfig()
	cfg.Pipeline = *pipelined
	cfg.Quant = *quant
	cfg.SchedMapping = *schedMapping
	cfg.SchedStatic = *schedStatic
	cfg.Cameras = *cameras
	cfg.AmbientC = *ambient
	cfg.Seed = *seed
	if *shuttle {
		cfg.Vehicle = vehicle.ShuttleParams()
	}
	cfg.FPGAOffload = !*noFPGA
	cfg.HardwareSync = !*noSync
	cfg.ReactivePath = !*noReactive
	cfg.RadarTracking = !*noRadarTrk
	cfg.EMPlanner = *emPlanner

	w := core.CruiseScenario(*seed)
	s := core.New(cfg, w)
	var tracer *core.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		tracer = core.NewTracer(f)
		s.AttachTracer(tracer)
	}
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		s.AttachMetrics(reg)
	}
	var spans *obs.SpanWriter
	if *spansPath != "" {
		f, err := os.Create(*spansPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spans:", err)
			os.Exit(1)
		}
		defer f.Close()
		spans = obs.NewSpanWriter(f)
		s.AttachSpans(spans)
	}
	var box *obs.FlightRecorder
	if *boxPath != "" {
		f, err := os.Create(*boxPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blackbox:", err)
			os.Exit(1)
		}
		defer f.Close()
		// Three blocked cycles in a row is already an anomaly at 10 Hz.
		box = obs.NewFlightRecorder(f, *boxDepth, 3)
		s.AttachFlightRecorder(box)
	}
	rep := s.Run(*duration)
	if tracer != nil {
		if n, err := tracer.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
		} else {
			fmt.Printf("trace: %d records -> %s\n", n, *tracePath)
		}
	}
	if reg != nil {
		if err := writeMetrics(reg, *metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		} else {
			fmt.Printf("metrics: registry snapshot -> %s\n", *metricsPath)
		}
	}
	if spans != nil {
		if n, err := spans.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "spans:", err)
		} else {
			fmt.Printf("spans: %d events -> %s\n", n, *spansPath)
		}
	}
	if box != nil {
		if n, err := box.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "blackbox:", err)
		} else {
			fmt.Printf("blackbox: %d dumps -> %s\n", n, *boxPath)
		}
	}
	fmt.Printf("SoV cruise: %v simulated, seed %d\n", *duration, *seed)
	fmt.Print(rep.Render())
	if rep.Collisions > 0 {
		fmt.Fprintln(os.Stderr, "warning: collisions occurred")
		os.Exit(1)
	}
}

// writeMetrics renders the registry to path: the JSON snapshot for .json
// paths, the Prometheus text exposition otherwise. Host-class metrics are
// included — the file is a diagnostic artifact; determinism-sensitive
// consumers read only the virtual section (the text form separates them).
func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f, true)
	} else {
		err = reg.WriteText(f, true)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
