// Command sovtrace re-analyzes an archived JSONL run trace (produced by
// `sovsim -trace`), recomputing the headline latency and distance
// statistics offline — the analysis half of the Fig. 1 vehicle-statistics
// loop.
//
// Usage:
//
//	sovtrace <trace.jsonl>
package main

import (
	"fmt"
	"os"

	"sov/internal/core"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Println("usage: sovtrace <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	sum, err := core.SummarizeTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cycles: %d (%d blocked)\n", sum.Cycles, sum.BlockedCycles)
	fmt.Printf("distance: %.0f m\n", sum.DistanceM)
	fmt.Printf("Tcomp: %s ms\n", sum.TcompMs)
	fmt.Printf("in-flight commands at capture: mean=%.2f max=%.0f\n",
		sum.InFlight.Mean, sum.InFlight.Max)
}
