// Command sovtrace re-analyzes archived run telemetry offline — the
// analysis half of the Fig. 1 vehicle-statistics loop.
//
// Usage:
//
//	sovtrace <trace.jsonl>           re-analyze a JSONL per-cycle trace
//	                                 (produced by `sovsim -trace`)
//	sovtrace -spans <spans.json>     analyze a Chrome trace_event span file
//	                                 (produced by `sovsim -spans`): per-stage
//	                                 latency percentiles and perception
//	                                 critical-path attribution per cycle
//	sovtrace -blackbox <box.jsonl>   triage a flight-recorder dump archive
//	                                 (produced by `sovsim -blackbox`):
//	                                 trigger kind x dump count x first/last
//	                                 virtual time
package main

import (
	"flag"
	"fmt"
	"os"

	"sov/internal/core"
	"sov/internal/obs"
)

func main() {
	spansMode := flag.Bool("spans", false, "treat the input as a Chrome trace_event span file")
	blackboxMode := flag.Bool("blackbox", false, "treat the input as a flight-recorder JSONL dump archive")
	flag.Parse()
	if flag.NArg() != 1 || (*spansMode && *blackboxMode) {
		fmt.Println("usage: sovtrace [-spans | -blackbox] <file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	if *blackboxMode {
		sum, err := obs.SummarizeBlackbox(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(sum.Render())
		return
	}

	if *spansMode {
		sum, err := obs.SummarizeSpans(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(sum.Render())
		return
	}

	sum, err := core.SummarizeTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cycles: %d (%d blocked)\n", sum.Cycles, sum.BlockedCycles)
	if sum.MalformedLines > 0 {
		fmt.Printf("malformed lines skipped: %d\n", sum.MalformedLines)
	}
	fmt.Printf("distance: %.0f m\n", sum.DistanceM)
	fmt.Printf("Tcomp: %s ms\n", sum.TcompMs)
	fmt.Printf("in-flight commands at capture: mean=%.2f max=%.0f\n",
		sum.InFlight.Mean, sum.InFlight.Max)
}
