// Command sovbench regenerates every table and figure of the paper's
// evaluation section and prints them as text reports (see EXPERIMENTS.md
// for the paper-vs-measured record).
//
// Usage:
//
//	sovbench [-duration 120s] [-seed 1] [-points 4000] [-only fig10] [-workers N]
//	         [-pipeline] [-cpuprofile cpu.out] [-memprofile mem.out]
//	         [-metrics m.prom] [-spans s.json] [-blackbox b.jsonl]
//
// The telemetry flags attach the unified observability layer to the Fig. 10
// characterization cruise: when any is set, an instrumented characterization
// run executes (replacing the plain one under -only fig10) and its registry
// exposition, span file, and flight-recorder dumps land at the given paths.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sov/internal/core"
	"sov/internal/experiments"
	"sov/internal/obs"
	"sov/internal/parallel"
)

func main() {
	duration := flag.Duration("duration", 120*time.Second, "SoV characterization run length")
	seed := flag.Int64("seed", 1, "seed")
	points := flag.Int("points", 4000, "points per synthetic LiDAR scan")
	only := flag.String("only", "", "run a single experiment: fig2|fig3a|fig3b|table1|table2|fig4a|fig4b|fig6|fig8|fig9|fig10|fig11a|fig11b|fig12|reactive|fusion|extensions|sched|sched-json|csv")
	workers := flag.Int("workers", runtime.NumCPU(), "worker count for parallel kernels (output is identical for any value)")
	pipelined := flag.Bool("pipeline", false, "run SoV control loops as overlapped pipeline stages (output is identical)")
	quant := flag.Bool("quant", false, "back perception with the int8 fixed-point kernels (DESIGN.md \u00a78)")
	sched := flag.Bool("sched", false, "attach the online heterogeneous scheduler to SoV runs (DESIGN.md \u00a713)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	metricsPath := flag.String("metrics", "", "attach a metrics registry to the characterization cruise and write its exposition here (.json for JSON, else Prometheus text)")
	spansPath := flag.String("spans", "", "attach span tracing to the characterization cruise and write Chrome trace_event JSON here")
	boxPath := flag.String("blackbox", "", "attach the flight recorder to the characterization cruise and write anomaly dumps (JSONL) here")
	flag.Parse()
	parallel.SetWorkers(*workers)
	core.SetPipelineDefault(*pipelined)
	core.SetQuantDefault(*quant)
	core.SetSchedDefault(*sched)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	telemetry := *metricsPath != "" || *spansPath != "" || *boxPath != ""

	if *only == "" {
		fmt.Print(experiments.All(*seed, *duration, *points))
		if telemetry {
			runInstrumented(*seed, *duration, *metricsPath, *spansPath, *boxPath)
		}
		return
	}
	if telemetry && strings.ToLower(*only) != "fig10" {
		defer runInstrumented(*seed, *duration, *metricsPath, *spansPath, *boxPath)
	}
	switch strings.ToLower(*only) {
	case "fig2":
		fmt.Print(experiments.Fig2LatencyChain())
	case "fig3a":
		fmt.Print(experiments.Fig3aRequirement())
	case "fig3b":
		fmt.Print(experiments.Fig3bDrivingTime())
	case "table1":
		fmt.Print(experiments.Table1Power())
	case "table2":
		fmt.Print(experiments.Table2Cost())
	case "fig4a":
		fmt.Print(experiments.Fig4aReuse(*points))
	case "fig4b":
		fmt.Print(experiments.Fig4bTraffic(*points))
	case "fig6":
		fmt.Print(experiments.Fig6Platforms())
	case "fig8":
		fmt.Print(experiments.Fig8Mappings())
	case "fig9":
		fmt.Print(experiments.Fig9RPR())
	case "fig10":
		if telemetry {
			runInstrumented(*seed, *duration, *metricsPath, *spansPath, *boxPath)
		} else {
			out, _ := experiments.Fig10Characterization(*seed, *duration)
			fmt.Print(out)
		}
	case "fig11a":
		fmt.Print(experiments.Fig11aDepthSync())
	case "fig11b":
		fmt.Print(experiments.Fig11bLocalizationSync())
	case "fig12":
		fmt.Print(experiments.Fig12SyncArchitecture())
	case "reactive":
		fmt.Print(experiments.ReactivePathStudy())
	case "csv":
		fmt.Print(experiments.SeriesCSV())
	case "fusion":
		fmt.Print(experiments.FusionStudy())
	case "extensions":
		fmt.Print(experiments.Extensions())
	case "sched":
		fmt.Print(experiments.SchedDynamic(*seed))
	case "sched-json":
		fmt.Print(experiments.SchedBenchJSON(*seed))
	default:
		fmt.Printf("unknown experiment %q\n", *only)
	}
}

// runInstrumented executes the telemetry-attached characterization cruise
// and writes the requested artifacts.
func runInstrumented(seed int64, duration time.Duration, metricsPath, spansPath, boxPath string) {
	var reg *obs.Registry
	if metricsPath != "" {
		reg = obs.NewRegistry()
	}
	var spans *obs.SpanWriter
	var spansFile *os.File
	if spansPath != "" {
		f, err := os.Create(spansPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spans:", err)
			return
		}
		spansFile = f
		spans = obs.NewSpanWriter(f)
	}
	var box *obs.FlightRecorder
	var boxFile *os.File
	if boxPath != "" {
		f, err := os.Create(boxPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blackbox:", err)
			return
		}
		boxFile = f
		box = obs.NewFlightRecorder(f, 64, 3)
	}

	out, _ := experiments.Fig10Instrumented(seed, duration, reg, spans, box)
	fmt.Print(out)

	if reg != nil {
		if err := writeMetrics(reg, metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		} else {
			fmt.Printf("metrics: registry snapshot -> %s\n", metricsPath)
		}
	}
	if spans != nil {
		n, err := spans.Close()
		if cerr := spansFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "spans:", err)
		} else {
			fmt.Printf("spans: %d events -> %s\n", n, spansPath)
		}
	}
	if box != nil {
		n, err := box.Close()
		if cerr := boxFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "blackbox:", err)
		} else {
			fmt.Printf("blackbox: %d dumps -> %s\n", n, boxPath)
		}
	}
}

// writeMetrics renders the registry to path: JSON for .json paths, the
// Prometheus text exposition otherwise. Host-class metrics are included.
func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f, true)
	} else {
		err = reg.WriteText(f, true)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
