// Command sovbench regenerates every table and figure of the paper's
// evaluation section and prints them as text reports (see EXPERIMENTS.md
// for the paper-vs-measured record).
//
// Usage:
//
//	sovbench [-duration 120s] [-seed 1] [-points 4000] [-only fig10] [-workers N]
//	         [-pipeline] [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sov/internal/core"
	"sov/internal/experiments"
	"sov/internal/parallel"
)

func main() {
	duration := flag.Duration("duration", 120*time.Second, "SoV characterization run length")
	seed := flag.Int64("seed", 1, "seed")
	points := flag.Int("points", 4000, "points per synthetic LiDAR scan")
	only := flag.String("only", "", "run a single experiment: fig2|fig3a|fig3b|table1|table2|fig4a|fig4b|fig6|fig8|fig9|fig10|fig11a|fig11b|fig12|reactive|fusion|extensions|csv")
	workers := flag.Int("workers", runtime.NumCPU(), "worker count for parallel kernels (output is identical for any value)")
	pipelined := flag.Bool("pipeline", false, "run SoV control loops as overlapped pipeline stages (output is identical)")
	quant := flag.Bool("quant", false, "back perception with the int8 fixed-point kernels (DESIGN.md \u00a78)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	flag.Parse()
	parallel.SetWorkers(*workers)
	core.SetPipelineDefault(*pipelined)
	core.SetQuantDefault(*quant)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	if *only == "" {
		fmt.Print(experiments.All(*seed, *duration, *points))
		return
	}
	switch strings.ToLower(*only) {
	case "fig2":
		fmt.Print(experiments.Fig2LatencyChain())
	case "fig3a":
		fmt.Print(experiments.Fig3aRequirement())
	case "fig3b":
		fmt.Print(experiments.Fig3bDrivingTime())
	case "table1":
		fmt.Print(experiments.Table1Power())
	case "table2":
		fmt.Print(experiments.Table2Cost())
	case "fig4a":
		fmt.Print(experiments.Fig4aReuse(*points))
	case "fig4b":
		fmt.Print(experiments.Fig4bTraffic(*points))
	case "fig6":
		fmt.Print(experiments.Fig6Platforms())
	case "fig8":
		fmt.Print(experiments.Fig8Mappings())
	case "fig9":
		fmt.Print(experiments.Fig9RPR())
	case "fig10":
		out, _ := experiments.Fig10Characterization(*seed, *duration)
		fmt.Print(out)
	case "fig11a":
		fmt.Print(experiments.Fig11aDepthSync())
	case "fig11b":
		fmt.Print(experiments.Fig11bLocalizationSync())
	case "fig12":
		fmt.Print(experiments.Fig12SyncArchitecture())
	case "reactive":
		fmt.Print(experiments.ReactivePathStudy())
	case "csv":
		fmt.Print(experiments.SeriesCSV())
	case "fusion":
		fmt.Print(experiments.FusionStudy())
	case "extensions":
		fmt.Print(experiments.Extensions())
	default:
		fmt.Printf("unknown experiment %q\n", *only)
	}
}
