// Command sovlint enforces the repo's determinism, hot-path allocation,
// and concurrency invariants: a pure-stdlib static-analysis driver
// (go/parser + go/types, no golang.org/x/tools) running the analyzer suite
// in internal/lint over every package in the module.
//
// Usage:
//
//	sovlint [-workers n] [-list] [-json] [packages...]
//
// Packages are directories or "./..." (the default: every package under
// the module root). Findings print as "file:line:col: [analyzer] message"
// — or, with -json, as a stable JSON array CI can diff byte-for-byte —
// and the exit status is 1 when any survive suppression. See DESIGN.md §7
// for the invariants and the //sovlint annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sov/internal/lint"
	"sov/internal/parallel"
)

func main() {
	workers := flag.Int("workers", 0, "worker count for the analyzer matrix (0 = NumCPU); findings are identical for any value")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (stable field and finding order)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sovlint [flags] [./... | dirs]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var pkgs []*lint.Package
	var dirs []string
	all := false
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == modRoot+"/..." {
			all = true
			continue
		}
		dirs = append(dirs, strings.TrimSuffix(arg, string(filepath.Separator)))
	}
	if all {
		pkgs, err = loader.LoadAll()
	} else {
		pkgs, err = loader.LoadDirs(dirs)
	}
	if err != nil {
		fatal(err)
	}

	findings := lint.Run(pkgs, lint.Analyzers())
	if *jsonOut {
		b, err := lint.FormatJSON(findings, modRoot)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
	} else {
		for _, line := range lint.Format(findings, modRoot) {
			fmt.Println(line)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sovlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sovlint:", err)
	os.Exit(2)
}
