// Parallel-substrate speedup benchmarks: each kernel runs the identical
// workload at workers=1 and workers=max so `go test -bench=ParallelSpeedup`
// reports the scaling of the internal/parallel fan-out directly. Outputs
// are byte-identical across worker counts (see parallel_determinism_test.go);
// only the wall clock should move.
package sov

import (
	"math/rand"
	"runtime"
	"testing"

	"sov/internal/mathx"
	"sov/internal/nn"
	"sov/internal/parallel"
	"sov/internal/pointcloud"
	"sov/internal/sim"
	"sov/internal/vision"
)

// benchAtWorkerCounts runs the body once with a single worker and once with
// every available CPU. Sub-benchmark names are fixed (not the CPU count) so
// result lines diff cleanly across machines.
func benchAtWorkerCounts(b *testing.B, body func(b *testing.B)) {
	for _, w := range []struct {
		name string
		n    int
	}{
		{"workers=1", 1},
		{"workers=max", runtime.NumCPU()},
	} {
		b.Run(w.name, func(b *testing.B) {
			prev := parallel.SetWorkers(w.n)
			defer parallel.SetWorkers(prev)
			b.ReportAllocs()
			body(b)
		})
	}
}

func benchStereoPair(w, h int) (*vision.Image, *vision.Image) {
	intr := vision.DefaultIntrinsics()
	intr.W, intr.H = w, h
	intr.Cx, intr.Cy = float64(w)/2, float64(h)/2
	rig := vision.StereoRig{Intr: intr, Baseline: 0.12}
	scene := vision.Scene{Background: 2, BgDepth: 25, Boxes: []vision.Box{
		{X: -1.5, Y: 0, Z: 6, W: 1.5, H: 1.5, Texture: 7},
		{X: 1.2, Y: 0.2, Z: 9, W: 2, H: 1.2, Texture: 19},
	}}
	return scene.RenderStereo(rig)
}

func BenchmarkParallelSpeedupSGM(b *testing.B) {
	left, right := benchStereoPair(256, 192)
	cfg := vision.DefaultSGMConfig()
	cfg.MaxDisp = 32
	benchAtWorkerCounts(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vision.SGM(left, right, cfg)
		}
	})
}

func BenchmarkParallelSpeedupBlockMatch(b *testing.B) {
	left, right := benchStereoPair(192, 144)
	benchAtWorkerCounts(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vision.BlockMatch(left, right, 24, 3)
		}
	})
}

func BenchmarkParallelSpeedupConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	conv := nn.NewConv2D(16, 32, 3, 1, 1, true, rng)
	in := nn.NewTensor(16, 64, 64)
	for i := range in.Data {
		in.Data[i] = float32(rng.NormFloat64())
	}
	benchAtWorkerCounts(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conv.Forward(in)
		}
	})
}

func BenchmarkParallelSpeedupFFT2D(b *testing.B) {
	const n = 256
	src := make([]complex128, n*n)
	rng := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = complex(rng.NormFloat64(), 0)
	}
	work := make([]complex128, len(src))
	benchAtWorkerCounts(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(work, src)
			if err := mathx.FFT2D(work, n, n, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParallelSpeedupICP(b *testing.B) {
	rng := sim.NewRNG(21)
	scan := pointcloud.GenerateScan(6000, 77, rng.Fork())
	moved := scan.Transform(0.03, mathx.Vec3{X: 0.3, Y: -0.1})
	benchAtWorkerCounts(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree := pointcloud.Build(scan, nil)
			pointcloud.Localize(tree, moved, nil, 10, 1)
		}
	})
}
