package sov

import (
	"testing"
	"time"
)

func TestPublicAPISmoke(t *testing.T) {
	w := CruiseScenario(1)
	s := NewSystem(DefaultConfig(), w)
	rep := s.Run(20 * time.Second)
	if rep.Cycles < 150 {
		t.Fatalf("cycles = %d", rep.Cycles)
	}
	if s.DistanceM() < 50 {
		t.Fatalf("distance = %.1f", s.DistanceM())
	}
	if s.Speed() < 0 {
		t.Fatal("negative speed")
	}
}

func TestPublicModels(t *testing.T) {
	lm := DefaultLatencyModel()
	if lm.BrakingDistance() <= 0 {
		t.Fatal("braking distance")
	}
	em := DefaultEnergyModel()
	if em.DrivingTimeHours(DefaultPowerBudget().TotalKW()) >= 10 {
		t.Fatal("AD power should reduce driving time below baseline")
	}
	if CameraVehicleCost().SensorTotalUSD() >= LiDARVehicleCost().SensorTotalUSD() {
		t.Fatal("camera sensors must be cheaper")
	}
	if DefaultTCO().CostPerTripUSD() <= 0 {
		t.Fatal("TCO per trip")
	}
}

func TestPublicPlatformAndRPR(t *testing.T) {
	if len(PlatformCatalog()) != 4 {
		t.Fatal("catalog size")
	}
	results := ExploreMappings()
	if len(results) == 0 || results[0].Mapping.Localization != "FPGA" {
		t.Fatalf("best mapping = %+v", results)
	}
	r := NewRPREngine().Transfer(1 << 20)
	if r.Throughput < 350e6 {
		t.Fatalf("rpr throughput = %v", r.Throughput)
	}
}

func TestPublicSyncExperiments(t *testing.T) {
	sw := SoftwareSyncExperiment(5*time.Second, 1)
	hw := HardwareSyncExperiment(5*time.Second, 1)
	if sw.MeanMs <= hw.MeanMs {
		t.Fatalf("sw %.2f <= hw %.2f", sw.MeanMs, hw.MeanMs)
	}
	if e := StereoDepthErrorAtOffset(60 * time.Millisecond); e < 0.5 {
		t.Fatalf("depth error at 60 ms = %v", e)
	}
}

func TestWorldBuilders(t *testing.T) {
	if w := NewCorridor(100, 2); len(w.Landmarks) == 0 {
		t.Fatal("corridor landmarks")
	}
	if w := CampusLoop(80, 2); len(w.Lanes) != 4 {
		t.Fatal("campus lanes")
	}
}

func TestCutInPublic(t *testing.T) {
	out := RunCutIn(DefaultConfig(), 15, 25*time.Second)
	if out.Collided {
		t.Fatalf("collision at 15 m: %+v", out)
	}
}
